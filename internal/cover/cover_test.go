package cover_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/obs"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

// smallGraph builds n1(start) -> n2 -> n3(final).
func smallGraph(t *testing.T) *tfm.Graph {
	t.Helper()
	g := tfm.New("Tiny")
	for _, n := range []tfm.Node{
		{ID: "n1", Methods: []string{"m1"}, Start: true},
		{ID: "n2", Methods: []string{"m2"}},
		{ID: "n3", Methods: []string{"m3"}, Final: true},
	} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]tfm.NodeID{{"n1", "n2"}, {"n2", "n3"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestComputePartialCoverage pins the projection rules on a hand-built
// report: a completed case covers its whole path, a failed case covers the
// transcript-derived prefix, and an uncompleted transaction does not count
// as covered.
func TestComputePartialCoverage(t *testing.T) {
	g := smallGraph(t)
	suite := &driver.Suite{
		Component: "Tiny",
		Seed:      7,
		Criterion: "all-transactions",
		Cases: []driver.TestCase{
			{ID: "TC0", Transaction: "n1>n2>n3", Path: []string{"n1", "n2", "n3"},
				Calls: []driver.Call{{Method: "m1"}, {Method: "m2"}, {Method: "m3"}}},
			{ID: "TC1", Transaction: "n1>n2>n3", Path: []string{"n1", "n2", "n3"},
				Calls: []driver.Call{{Method: "m1"}, {Method: "m2"}, {Method: "m3"}}},
		},
	}
	rep := &testexec.Report{
		Component: "Tiny",
		Results: []testexec.CaseResult{
			{CaseID: "TC0", Transaction: "n1>n2>n3", Outcome: testexec.OutcomePass,
				Transcript: "NEW Tiny()\nCALL m2() -> []\nDESTROY Tiny\nREPORT ...\n"},
			// TC1 violated on the second call: two calls dispatched.
			{CaseID: "TC1", Transaction: "n1>n2>n3", Outcome: testexec.OutcomeViolation,
				Transcript: "NEW Tiny()\nCALL m2() -> error: invariant is violated!\n"},
		},
	}
	sc, err := cover.Compute(g, suite, rep)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if sc.TransactionsCovered != 1 || sc.TransactionsTotal != 1 {
		t.Errorf("transactions = %d/%d, want 1/1", sc.TransactionsCovered, sc.TransactionsTotal)
	}
	if sc.TransactionPercent() != 100 {
		t.Errorf("percent = %v, want 100", sc.TransactionPercent())
	}
	wantCases := []cover.CaseCoverage{
		{ID: "TC0", Transaction: "n1>n2>n3", Outcome: "pass", Calls: 3, Completed: true},
		{ID: "TC1", Transaction: "n1>n2>n3", Outcome: "assertion-violation", Calls: 2, Completed: false},
	}
	if !reflect.DeepEqual(sc.Cases, wantCases) {
		t.Errorf("cases = %+v, want %+v", sc.Cases, wantCases)
	}
	// TC0 hits all three nodes; TC1 hits n1, n2 only.
	wantNodes := []cover.NodeCoverage{{ID: "n1", Hits: 2}, {ID: "n2", Hits: 2}, {ID: "n3", Hits: 1}}
	if !reflect.DeepEqual(sc.Nodes, wantNodes) {
		t.Errorf("nodes = %+v, want %+v", sc.Nodes, wantNodes)
	}
	wantEdges := []cover.EdgeCoverage{{From: "n1", To: "n2", Hits: 2}, {From: "n2", To: "n3", Hits: 1}}
	if !reflect.DeepEqual(sc.Edges, wantEdges) {
		t.Errorf("edges = %+v, want %+v", sc.Edges, wantEdges)
	}
	if sc.NodesCovered != 3 || sc.EdgesCovered != 2 {
		t.Errorf("covered nodes/edges = %d/%d, want 3/2", sc.NodesCovered, sc.EdgesCovered)
	}
}

func TestComputeUncoveredTransaction(t *testing.T) {
	g := smallGraph(t)
	suite := &driver.Suite{
		Component: "Tiny",
		Cases: []driver.TestCase{
			{ID: "TC0", Transaction: "n1>n2>n3", Path: []string{"n1", "n2", "n3"},
				Calls: []driver.Call{{Method: "m1"}, {Method: "m2"}, {Method: "m3"}}},
		},
	}
	rep := &testexec.Report{
		Component: "Tiny",
		Results: []testexec.CaseResult{
			{CaseID: "TC0", Outcome: testexec.OutcomePanic, Transcript: "NEW Tiny()\n"},
		},
	}
	sc, err := cover.Compute(g, suite, rep)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TransactionsCovered != 0 || sc.TransactionPercent() != 0 {
		t.Errorf("crashed-only suite claims coverage: %d covered, %.1f%%",
			sc.TransactionsCovered, sc.TransactionPercent())
	}
	if sc.NodesCovered != 1 { // only n1 before the crash
		t.Errorf("NodesCovered = %d, want 1", sc.NodesCovered)
	}
}

func TestComputeMismatchedInputs(t *testing.T) {
	g := smallGraph(t)
	if _, err := cover.Compute(g, &driver.Suite{Component: "A"}, &testexec.Report{Component: "B"}); err == nil {
		t.Error("component mismatch not rejected")
	}
	suite := &driver.Suite{Component: "Tiny", Cases: []driver.TestCase{{ID: "TC0"}}}
	if _, err := cover.Compute(g, suite, &testexec.Report{Component: "Tiny"}); err == nil {
		t.Error("missing case result not rejected")
	}
	if _, err := cover.Compute(g, nil, nil); err == nil {
		t.Error("nil inputs not rejected")
	}
}

// genOpts mirrors the CLI defaults the campaign service uses.
func genOpts() driver.Options {
	return driver.Options{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4}
}

// TestGeneratedDriversReachFullTransactionCoverage is the paper's claim
// made checkable: for every bundled component, the generated driver
// executes every transaction the criterion enumerated — 100% transaction
// coverage, with all model nodes exercised.
func TestGeneratedDriversReachFullTransactionCoverage(t *testing.T) {
	for name, tgt := range core.Targets() {
		t.Run(name, func(t *testing.T) {
			comp := tgt.New(nil)
			g, err := comp.Spec().TFM()
			if err != nil {
				t.Fatalf("TFM: %v", err)
			}
			suite, rep, err := comp.SelfTest(genOpts(), testexec.Options{Seed: 42})
			if err != nil {
				t.Fatalf("SelfTest: %v", err)
			}
			sc, err := cover.Compute(g, suite, rep)
			if err != nil {
				t.Fatalf("Compute: %v", err)
			}
			if sc.TransactionPercent() != 100 {
				t.Errorf("transaction coverage = %.1f%% (%d/%d), want 100%%",
					sc.TransactionPercent(), sc.TransactionsCovered, sc.TransactionsTotal)
			}
			if sc.NodesCovered != sc.NodesTotal {
				t.Errorf("nodes covered = %d/%d, want all", sc.NodesCovered, sc.NodesTotal)
			}
			if len(sc.AssertionSites) == 0 {
				t.Error("no assertion telemetry recorded; oracle not observable")
			}
		})
	}
}

// campaignArtifact runs an Account mutation campaign with the given options
// and encodes its coverage artifact.
func campaignArtifact(t *testing.T, o core.MutationOptions) []byte {
	t.Helper()
	tgt, err := core.LookupTarget("Account")
	if err != nil {
		t.Fatal(err)
	}
	comp := tgt.New(nil)
	g, err := comp.Spec().TFM()
	if err != nil {
		t.Fatal(err)
	}
	suite, err := comp.GenerateSuite(genOpts())
	if err != nil {
		t.Fatal(err)
	}
	if o.Exec.Seed == 0 {
		o.Exec.Seed = 42
	}
	res, err := core.MutationRunOpts("Account", suite, nil, nil, o)
	if err != nil {
		t.Fatalf("MutationRunOpts: %v", err)
	}
	art, err := cover.FromCampaign(g, suite, res)
	if err != nil {
		t.Fatalf("FromCampaign: %v", err)
	}
	raw, err := art.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return raw
}

// TestCampaignArtifactDeterministic is the acceptance criterion: the
// artifact bytes are identical across serial vs parallel, traced vs
// untraced, and warm vs cold campaigns.
func TestCampaignArtifactDeterministic(t *testing.T) {
	base := campaignArtifact(t, core.MutationOptions{Parallelism: 1})
	if par := campaignArtifact(t, core.MutationOptions{Parallelism: 4}); !bytes.Equal(base, par) {
		t.Error("parallel campaign artifact differs from serial")
	}
	traced := core.MutationOptions{Parallelism: 1}
	traced.Exec.Trace = obs.NewCollector()
	traced.Exec.Metrics = obs.NewMetrics()
	if tr := campaignArtifact(t, traced); !bytes.Equal(base, tr) {
		t.Error("traced campaign artifact differs from untraced")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := campaignArtifact(t, core.MutationOptions{Parallelism: 1, Store: st})
	warm := campaignArtifact(t, core.MutationOptions{Parallelism: 1, Store: st})
	if !bytes.Equal(base, cold) {
		t.Error("cold cached campaign artifact differs from uncached")
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm campaign artifact differs from cold")
	}
}

func TestArtifactRoundTripAndRender(t *testing.T) {
	tgt, err := core.LookupTarget("Account")
	if err != nil {
		t.Fatal(err)
	}
	comp := tgt.New(nil)
	g, err := comp.Spec().TFM()
	if err != nil {
		t.Fatal(err)
	}
	suite, err := comp.GenerateSuite(genOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MutationRunOpts("Account", suite, nil, nil,
		core.MutationOptions{Parallelism: 1, Exec: testexec.Options{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	art, err := cover.FromCampaign(g, suite, res)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := cover.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(art, back) {
		t.Error("artifact did not survive the Encode/Load round trip")
	}
	raw2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("re-encoding a loaded artifact changed its bytes")
	}

	var text bytes.Buffer
	if err := back.Render(&text); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{
		"Component: Account", "TRANSACTION", "ASSERTION SITE",
		"MUTANT", "OPERATOR", "coverage: transactions",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("rendered artifact missing %q:\n%s", want, text.String())
		}
	}

	var dot bytes.Buffer
	if err := back.WriteHeatmap(&dot, g); err != nil {
		t.Fatalf("WriteHeatmap: %v", err)
	}
	if !strings.Contains(dot.String(), "digraph") || !strings.Contains(dot.String(), "hits") {
		t.Errorf("heatmap DOT looks wrong:\n%s", dot.String())
	}
	if err := back.WriteHeatmap(&dot, nil); err == nil {
		t.Error("WriteHeatmap without a graph should fail")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := cover.Decode([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := cover.Decode([]byte(`{"version":1}`)); err == nil {
		t.Error("artifact without suite accepted")
	}
}
