package stockdb

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestProviders(t *testing.T) {
	db := New()
	p1 := db.AddProvider("acme")
	p2 := db.AddProvider("globex")
	if p1.ID == p2.ID {
		t.Error("provider IDs should be distinct")
	}
	got, ok := db.Provider(p1.ID)
	if !ok || got.Name != "acme" {
		t.Errorf("Provider(%d) = %v, %v", p1.ID, got, ok)
	}
	if _, ok := db.Provider(999); ok {
		t.Error("unknown provider should miss")
	}
	all := db.Providers()
	if len(all) != 2 || all[0].ID > all[1].ID {
		t.Errorf("Providers() = %v", all)
	}
	if !strings.Contains(p1.String(), "acme") {
		t.Errorf("String() = %q", p1.String())
	}
	var nilP *Provider
	if nilP.String() != "<no provider>" {
		t.Errorf("nil String() = %q", nilP.String())
	}
}

func TestInsertQueryRemove(t *testing.T) {
	db := New()
	rec := Record{Name: "bolt", Qty: 10, Price: 0.5}
	if err := db.Insert(rec); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := db.Insert(rec); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if err := db.Insert(Record{}); err == nil {
		t.Error("empty name insert should fail")
	}
	got, err := db.Query("bolt")
	if err != nil || got != rec {
		t.Errorf("Query = %+v, %v", got, err)
	}
	if _, err := db.Query("nut"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing query err = %v", err)
	}
	if db.Count() != 1 {
		t.Errorf("Count = %d", db.Count())
	}
	removed, err := db.Remove("bolt")
	if err != nil || removed != rec {
		t.Errorf("Remove = %+v, %v", removed, err)
	}
	if _, err := db.Remove("bolt"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second remove err = %v", err)
	}
	if db.Count() != 0 {
		t.Errorf("Count after remove = %d", db.Count())
	}
}

func TestUpdate(t *testing.T) {
	db := New()
	if err := db.Update(Record{Name: "x"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing err = %v", err)
	}
	if err := db.Insert(Record{Name: "x", Qty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(Record{Name: "x", Qty: 5}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := db.Query("x")
	if got.Qty != 5 {
		t.Errorf("updated qty = %d", got.Qty)
	}
}

func TestNamesAndReset(t *testing.T) {
	db := New()
	for _, n := range []string{"c", "a", "b"} {
		if err := db.Insert(Record{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	names := db.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names() = %v", names)
	}
	db.AddProvider("p")
	db.Reset()
	if db.Count() != 0 || len(db.Providers()) != 0 {
		t.Error("Reset left data behind")
	}
	// IDs restart after reset.
	if p := db.AddProvider("q"); p.ID != 1 {
		t.Errorf("post-reset provider ID = %d", p.ID)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				_ = db.Insert(Record{Name: name, Qty: int64(j)})
				_, _ = db.Query(name)
				_, _ = db.Remove(name)
				db.AddProvider(name)
				_ = db.Count()
				_ = db.Names()
			}
		}(i)
	}
	wg.Wait()
}

func TestInsertRemoveRoundTripProperty(t *testing.T) {
	prop := func(name string, qty int64, price float64) bool {
		if name == "" {
			return true
		}
		db := New()
		rec := Record{Name: name, Qty: qty, Price: price}
		if err := db.Insert(rec); err != nil {
			return false
		}
		got, err := db.Remove(name)
		return err == nil && got == rec && db.Count() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
