package domain

import "math/rand/v2"

// NewRand returns a deterministic random source for the given seed. All test
// generation in this repository flows through here so that suites are fully
// reproducible: the same t-spec and seed always yield the same test cases,
// which is what makes the recorded golden outputs (the mutation oracle's
// reference run) meaningful.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0x434f4e434154)) // "CONCAT"
}
