package mutation

import (
	"math"
	"strings"
	"testing"

	"concat/internal/domain"
)

func TestOperatorNames(t *testing.T) {
	tests := []struct {
		op   Operator
		want string
	}{
		{OpBitNeg, "IndVarBitNeg"},
		{OpRepGlob, "IndVarRepGlob"},
		{OpRepLoc, "IndVarRepLoc"},
		{OpRepExt, "IndVarRepExt"},
		{OpRepReq, "IndVarRepReq"},
		{Operator(9), "operator(9)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	for _, op := range AllOperators {
		if op.Description() == "" {
			t.Errorf("%s has no description", op)
		}
		back, err := ParseOperator(op.String())
		if err != nil || back != op {
			t.Errorf("ParseOperator(%s) = %v, %v", op, back, err)
		}
	}
	if Operator(9).Description() != "" {
		t.Error("unknown operator should have empty description")
	}
	if _, err := ParseOperator("Nope"); err == nil {
		t.Error("unknown operator name should fail")
	}
}

func TestRequiredConstants(t *testing.T) {
	ints := RequiredConstants(domain.KindInt)
	if len(ints) != 5 {
		t.Fatalf("int RC = %v", ints)
	}
	if ints[3].MustInt() != math.MaxInt64 || ints[4].MustInt() != math.MinInt64 {
		t.Errorf("int RC extremes = %v", ints)
	}
	if len(RequiredConstants(domain.KindFloat)) != 5 {
		t.Error("float RC size")
	}
	strs := RequiredConstants(domain.KindString)
	if len(strs) != 1 || strs[0].MustString() != "" {
		t.Errorf("string RC = %v", strs)
	}
	ptrs := RequiredConstants(domain.KindPointer)
	if len(ptrs) != 1 || !ptrs[0].IsNil() {
		t.Errorf("pointer RC = %v", ptrs)
	}
	if len(RequiredConstants(domain.KindBool)) != 2 {
		t.Error("bool RC size")
	}
	if RequiredConstants(domain.Kind(0)) != nil {
		t.Error("invalid kind RC should be nil")
	}
}

func testSite() Site {
	return Site{
		ID:        "Sort1/min.use1",
		Method:    "Sort1",
		Var:       "min",
		Kind:      domain.KindInt,
		Locals:    []string{"i", "j", "min"}, // "min" itself must be skipped
		Globals:   []string{"count"},
		Externals: []string{"debugLevel"},
	}
}

func TestRegisterSiteValidation(t *testing.T) {
	e := NewEngine()
	if err := e.RegisterSite(Site{}); err == nil {
		t.Error("empty site should fail")
	}
	if err := e.RegisterSite(Site{ID: "x"}); err == nil {
		t.Error("site without method should fail")
	}
	if err := e.RegisterSite(Site{ID: "x", Method: "m"}); err == nil {
		t.Error("site with invalid kind should fail")
	}
	if err := e.RegisterSite(testSite()); err != nil {
		t.Fatalf("RegisterSite: %v", err)
	}
	if err := e.RegisterSite(testSite()); err == nil {
		t.Error("duplicate site should fail")
	}
	if n := len(e.Sites()); n != 1 {
		t.Errorf("Sites() = %d", n)
	}
}

func TestMustRegisterSitesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegisterSites should panic on bad site")
		}
	}()
	NewEngine().MustRegisterSites(Site{})
}

func TestMethods(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(
		Site{ID: "a", Method: "Sort1", Kind: domain.KindInt},
		Site{ID: "b", Method: "Sort1", Kind: domain.KindInt},
		Site{ID: "c", Method: "FindMax", Kind: domain.KindInt},
	)
	got := e.Methods()
	if len(got) != 2 || got[0] != "FindMax" || got[1] != "Sort1" {
		t.Errorf("Methods() = %v", got)
	}
}

func TestEnumerate(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	ms := e.Enumerate(nil, nil)
	// BitNeg: 1. RepLoc: 2 (i, j; min skipped). RepGlob: 1. RepExt: 1.
	// RepReq: 5 int constants. Total 10.
	if len(ms) != 10 {
		t.Fatalf("Enumerate gave %d mutants: %v", len(ms), ms)
	}
	counts := map[Operator]int{}
	for _, m := range ms {
		counts[m.Operator]++
		if m.Method != "Sort1" || m.Site != "Sort1/min.use1" {
			t.Errorf("mutant %s has wrong site/method", m)
		}
	}
	want := map[Operator]int{OpBitNeg: 1, OpRepLoc: 2, OpRepGlob: 1, OpRepExt: 1, OpRepReq: 5}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("%s count = %d, want %d", op, counts[op], n)
		}
	}
}

func TestEnumerateMethodFilterAndOps(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(
		Site{ID: "a", Method: "Sort1", Var: "x", Kind: domain.KindInt, Locals: []string{"y"}},
		Site{ID: "b", Method: "FindMax", Var: "x", Kind: domain.KindInt, Locals: []string{"y"}},
	)
	ms := e.Enumerate([]Operator{OpRepLoc}, []string{"Sort1"})
	if len(ms) != 1 || ms[0].Site != "a" {
		t.Errorf("filtered enumeration = %v", ms)
	}
	if got := e.Enumerate([]Operator{Operator(42)}, nil); len(got) != 0 {
		t.Errorf("unknown operator enumeration = %v", got)
	}
}

func TestEnumerateBitNegOnlyInts(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(Site{ID: "s", Method: "m", Var: "s", Kind: domain.KindString})
	ms := e.Enumerate([]Operator{OpBitNeg}, nil)
	if len(ms) != 0 {
		t.Errorf("BitNeg on string site should yield nothing, got %v", ms)
	}
}

func TestEnumerateStringSiteRC(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(Site{ID: "s", Method: "m", Var: "s", Kind: domain.KindString})
	ms := e.Enumerate([]Operator{OpRepReq}, nil)
	if len(ms) != 1 || !ms[0].Constant.Equal(domain.Str("")) {
		t.Errorf("string RC mutants = %v", ms)
	}
}

func TestActivateValidation(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	if err := e.Activate(Mutant{ID: "x", Site: "nope"}); err == nil {
		t.Error("activating unknown site should fail")
	}
	if _, ok := e.Active(); ok {
		t.Error("no mutant should be active")
	}
	ms := e.Enumerate(nil, nil)
	if err := e.Activate(ms[0]); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	got, ok := e.Active()
	if !ok || got.ID != ms[0].ID {
		t.Errorf("Active() = %v, %v", got, ok)
	}
	e.Deactivate()
	if _, ok := e.Active(); ok {
		t.Error("Deactivate should disarm")
	}
}

func TestUsePassThroughWhenInactive(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	v := e.Use("Sort1/min.use1", domain.Int(42), Env{})
	if v.MustInt() != 42 {
		t.Errorf("inactive Use = %v", v)
	}
	if e.Infected() || e.Reached() {
		t.Error("inactive engine should not be infected or reached")
	}
}

func TestUseOtherSitePassThrough(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite(),
		Site{ID: "other", Method: "Sort1", Var: "x", Kind: domain.KindInt})
	ms := e.Enumerate([]Operator{OpBitNeg}, nil)
	if err := e.Activate(ms[0]); err != nil {
		t.Fatal(err)
	}
	v := e.Use("other", domain.Int(5), Env{})
	if v.MustInt() != 5 {
		t.Errorf("other-site Use = %v", v)
	}
	if e.Reached() {
		t.Error("other site should not mark the mutant reached")
	}
}

func TestUseBitNeg(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpBitNeg, "~")
	v := e.Use("Sort1/min.use1", domain.Int(5), Env{})
	if v.MustInt() != ^int64(5) {
		t.Errorf("BitNeg Use = %v", v)
	}
	if !e.Infected() || !e.Reached() {
		t.Error("BitNeg should infect and reach")
	}
}

func TestUseRepLoc(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpRepLoc, "i")
	env := Env{Locals: map[string]domain.Value{"i": domain.Int(99)}}
	v := e.Use("Sort1/min.use1", domain.Int(5), env)
	if v.MustInt() != 99 {
		t.Errorf("RepLoc Use = %v", v)
	}
	if !e.Infected() {
		t.Error("RepLoc with different value should infect")
	}
}

func TestUseRepLocSameValueNotInfected(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpRepLoc, "i")
	env := Env{Locals: map[string]domain.Value{"i": domain.Int(5)}}
	v := e.Use("Sort1/min.use1", domain.Int(5), env)
	if v.MustInt() != 5 {
		t.Errorf("Use = %v", v)
	}
	if e.Infected() {
		t.Error("replacement equal to original should not count as infection")
	}
	if !e.Reached() {
		t.Error("site executed: should be reached")
	}
}

func TestUseRepGlobAndExt(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpRepGlob, "count")
	env := Env{Globals: map[string]domain.Value{"count": domain.Int(7)}}
	if v := e.Use("Sort1/min.use1", domain.Int(5), env); v.MustInt() != 7 {
		t.Errorf("RepGlob Use = %v", v)
	}
	activate(t, e, OpRepExt, "debugLevel")
	env = Env{Externals: map[string]domain.Value{"debugLevel": domain.Int(3)}}
	if v := e.Use("Sort1/min.use1", domain.Int(5), env); v.MustInt() != 3 {
		t.Errorf("RepExt Use = %v", v)
	}
}

func TestUseMissingLocalReadsGarbage(t *testing.T) {
	// A RepLoc replacement whose local is not live at the use point models
	// reading an uninitialized C++ local: a deterministic garbage value.
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpRepLoc, "i")
	v := e.Use("Sort1/min.use1", domain.Int(5), Env{}) // no env values
	if v.MustInt() != -559038737 {
		t.Errorf("missing local Use = %v, want garbage sentinel", v)
	}
	if !e.Infected() {
		t.Error("garbage read should infect")
	}
	if !e.Reached() {
		t.Error("site executed: should be reached")
	}
}

func TestUseMissingGlobalLeavesValue(t *testing.T) {
	// Globals/externals are always live; a missing entry is a harness gap
	// and must not mutate the value.
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpRepGlob, "count")
	v := e.Use("Sort1/min.use1", domain.Int(5), Env{})
	if v.MustInt() != 5 {
		t.Errorf("missing global Use = %v", v)
	}
	if e.Infected() {
		t.Error("missing global should not infect")
	}
}

func TestGarbageValueKinds(t *testing.T) {
	if garbageValue(domain.Int(1)).Kind() != domain.KindInt {
		t.Error("int garbage kind")
	}
	if garbageValue(domain.Float(1)).Kind() != domain.KindFloat {
		t.Error("float garbage kind")
	}
	if garbageValue(domain.Str("x")).Kind() != domain.KindString {
		t.Error("string garbage kind")
	}
	if garbageValue(domain.Bool(true)).Kind() != domain.KindBool {
		t.Error("bool garbage kind")
	}
	if !garbageValue(domain.Nil()).IsNil() {
		t.Error("ref garbage should be nil")
	}
}

func TestUseRepReq(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	var target Mutant
	for _, m := range e.Enumerate([]Operator{OpRepReq}, nil) {
		if m.Constant.Equal(domain.Int(math.MaxInt64)) {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("MAXINT mutant not found")
	}
	if err := e.Activate(target); err != nil {
		t.Fatal(err)
	}
	if v := e.Use("Sort1/min.use1", domain.Int(5), Env{}); v.MustInt() != math.MaxInt64 {
		t.Errorf("RepReq Use = %v", v)
	}
}

func TestUseIntKindMismatchFallsBack(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpRepLoc, "i")
	env := Env{Locals: map[string]domain.Value{"i": domain.Str("oops")}}
	if got := e.UseInt("Sort1/min.use1", 5, env); got != 5 {
		t.Errorf("UseInt with string replacement = %d", got)
	}
}

func TestUseIntConvenience(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpBitNeg, "~")
	if got := e.UseInt("Sort1/min.use1", 5, Env{}); got != ^int64(5) {
		t.Errorf("UseInt = %d", got)
	}
}

func TestActivationResetsFlags(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	activate(t, e, OpBitNeg, "~")
	e.Use("Sort1/min.use1", domain.Int(1), Env{})
	if !e.Infected() {
		t.Fatal("should be infected")
	}
	activate(t, e, OpBitNeg, "~")
	if e.Infected() || e.Reached() {
		t.Error("re-activation should reset flags")
	}
}

func TestMutantString(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	ms := e.Enumerate([]Operator{OpRepGlob}, nil)
	if len(ms) != 1 || !strings.Contains(ms[0].String(), "IndVarRepGlob(count)") {
		t.Errorf("mutant = %v", ms)
	}
}

// activate arms the first enumerated mutant matching op and replacement.
func activate(t *testing.T, e *Engine, op Operator, repl string) {
	t.Helper()
	for _, m := range e.Enumerate([]Operator{op}, nil) {
		if m.Replacement == repl {
			if err := e.Activate(m); err != nil {
				t.Fatalf("Activate: %v", err)
			}
			return
		}
	}
	t.Fatalf("no mutant %s(%s)", op, repl)
}

// TestSitesAndEnumerateOrderIndependent pins the registration-order
// contract: Sites() and Enumerate() are sorted by site ID, never by
// insertion order. Parallel campaigns depend on this — mutant lists built
// by differently-provisioned engines must agree element for element.
func TestSitesAndEnumerateOrderIndependent(t *testing.T) {
	sites := []Site{
		{ID: "c", Method: "Sort1", Var: "k", Kind: domain.KindInt, Locals: []string{"i"}},
		{ID: "a", Method: "Sort1", Var: "i", Kind: domain.KindInt, Locals: []string{"j"}},
		{ID: "b", Method: "FindMax", Var: "m", Kind: domain.KindInt, Globals: []string{"count"}},
	}
	forward, reversed := NewEngine(), NewEngine()
	forward.MustRegisterSites(sites...)
	for i := len(sites) - 1; i >= 0; i-- {
		reversed.MustRegisterSites(sites[i])
	}

	fs, rs := forward.Sites(), reversed.Sites()
	if len(fs) != len(sites) || len(rs) != len(sites) {
		t.Fatalf("Sites() lengths = %d, %d, want %d", len(fs), len(rs), len(sites))
	}
	for i := range fs {
		if fs[i].ID != rs[i].ID {
			t.Fatalf("Sites()[%d]: %q vs %q — order depends on registration", i, fs[i].ID, rs[i].ID)
		}
		if i > 0 && !(fs[i-1].ID < fs[i].ID) {
			t.Fatalf("Sites() not sorted by ID: %q before %q", fs[i-1].ID, fs[i].ID)
		}
	}

	fm, rm := forward.Enumerate(nil, nil), reversed.Enumerate(nil, nil)
	if len(fm) == 0 || len(fm) != len(rm) {
		t.Fatalf("Enumerate lengths = %d, %d", len(fm), len(rm))
	}
	for i := range fm {
		if fm[i].ID != rm[i].ID {
			t.Fatalf("Enumerate()[%d]: %q vs %q — order depends on registration", i, fm[i].ID, rm[i].ID)
		}
	}
}

// TestCloneEnumeratesIdentically pins the provisioning contract behind
// parallel analysis: a clone carries the same site table (same sorted
// mutant list) and no active mutant.
func TestCloneEnumeratesIdentically(t *testing.T) {
	e := NewEngine()
	e.MustRegisterSites(testSite())
	orig := e.Enumerate(nil, nil)
	if err := e.Activate(orig[0]); err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if _, active := c.Active(); active {
		t.Error("clone inherited the active mutant")
	}
	got := c.Enumerate(nil, nil)
	if len(got) != len(orig) {
		t.Fatalf("clone enumerates %d mutants, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].ID != orig[i].ID {
			t.Fatalf("clone mutant %d = %q, want %q", i, got[i].ID, orig[i].ID)
		}
	}
}
