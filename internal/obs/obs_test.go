package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(0, KindSuite, "X")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.ID() != 0 {
		t.Error("nil span ID must be 0")
	}
	tr.EmitChildren(0, []Span{{ID: 1, Kind: KindCall, Name: "m"}})
	if tr.Err() != nil || tr.Spans() != nil {
		t.Error("nil tracer accessors must be zero")
	}
	var m *Metrics
	m.Inc("c", 1)
	m.Observe("d", "x", time.Millisecond)
	if snap := m.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil metrics snapshot must be empty")
	}
}

func TestTracerEmitsNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start(0, KindSuite, "CObList")
	child := tr.Start(root.ID(), KindCase, "TC1")
	child.SetAttr("outcome", "pass")
	child.End()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// Child ends first, so its line comes first.
	var first, second Span
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Kind != KindCase || first.Parent != second.ID {
		t.Errorf("unexpected spans: %+v / %+v", first, second)
	}
	if first.Attrs["outcome"] != "pass" {
		t.Errorf("attrs = %v", first.Attrs)
	}
	spans, err := ReadTrace(&buf)
	if err == nil && spans != nil {
		t.Log("buffer drained") // buf consumed above via String, re-read empty is fine
	}
	if n, err := ValidateNDJSON(strings.NewReader(lines[0] + "\n" + lines[1] + "\n")); err != nil || n != 2 {
		t.Fatalf("ValidateNDJSON = %d, %v", n, err)
	}
}

func TestEndIsIdempotentAndLateAttrsDrop(t *testing.T) {
	tr := NewCollector()
	sp := tr.Start(0, KindCase, "TC1")
	sp.End()
	sp.SetAttr("late", "x")
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("emitted %d spans, want 1", len(spans))
	}
	if _, ok := spans[0].Attrs["late"]; ok {
		t.Error("attr set after End must be dropped")
	}
}

func TestEmitChildrenRebasesIDsAndParents(t *testing.T) {
	child := NewCollector()
	r := child.Start(0, KindCall, "New")
	inner := child.Start(r.ID(), KindCall, "Poke")
	inner.End()
	r.End()

	parent := NewCollector()
	caseSpan := parent.Start(0, KindCase, "TC1")
	parent.EmitChildren(caseSpan.ID(), child.Spans())
	caseSpan.End()

	spans := parent.Spans()
	if err := ValidateTrace(spans); err != nil {
		t.Fatal(err)
	}
	// The child's root must hang off caseSpan; the inner call off the
	// rebased root.
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["New"].Parent != caseSpan.ID() {
		t.Errorf("New parent = %d, want %d", byName["New"].Parent, caseSpan.ID())
	}
	if byName["Poke"].Parent != byName["New"].ID {
		t.Errorf("Poke parent = %d, want %d", byName["Poke"].Parent, byName["New"].ID)
	}
}

func TestWrapUnwrapExtraPreservesPayloadBytes(t *testing.T) {
	payload := json.RawMessage(`{"reached":true,"infected":false}`)
	spans := []Span{{ID: 1, Kind: KindCall, Name: "Poke"}}
	wrapped := WrapExtra(payload, spans)
	got, gotSpans := UnwrapExtra(wrapped)
	if !bytes.Equal(got, payload) {
		t.Errorf("payload changed: %s -> %s", payload, got)
	}
	if len(gotSpans) != 1 || gotSpans[0].Name != "Poke" {
		t.Errorf("spans = %+v", gotSpans)
	}
	// No spans: pass-through both ways.
	if out := WrapExtra(payload, nil); !bytes.Equal(out, payload) {
		t.Error("WrapExtra with no spans must pass through")
	}
	if out, sp := UnwrapExtra(payload); !bytes.Equal(out, payload) || sp != nil {
		t.Error("UnwrapExtra on plain payload must pass through")
	}
	if out, sp := UnwrapExtra(nil); out != nil || sp != nil {
		t.Error("UnwrapExtra(nil) must be nil")
	}
}

func TestValidateTraceCatchesDrift(t *testing.T) {
	good := []Span{
		{ID: 1, Kind: KindSuite, Name: "S"},
		{ID: 2, Parent: 1, Kind: KindCase, Name: "TC"},
	}
	if err := ValidateTrace(good); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]Span{
		"dup id":         {{ID: 1, Kind: KindSuite, Name: "S"}, {ID: 1, Kind: KindCase, Name: "C"}},
		"missing parent": {{ID: 1, Parent: 9, Kind: KindCase, Name: "C"}},
		"unknown kind":   {{ID: 1, Kind: "weird", Name: "C"}},
		"empty name":     {{ID: 1, Kind: KindCase, Name: ""}},
		"zero id":        {{ID: 0, Kind: KindCase, Name: "C"}},
	}
	for name, spans := range cases {
		if err := ValidateTrace(spans); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestTreeNormalizesIDsAndOrdering(t *testing.T) {
	// Same structure, different IDs and emission order.
	a := []Span{
		{ID: 1, Kind: KindSuite, Name: "S"},
		{ID: 2, Parent: 1, Kind: KindCase, Name: "TC0", Attrs: map[string]string{"outcome": "pass"}},
		{ID: 3, Parent: 1, Kind: KindCase, Name: "TC1", Attrs: map[string]string{"outcome": "crash"}},
	}
	b := []Span{
		{ID: 7, Parent: 5, Kind: KindCase, Name: "TC1", Attrs: map[string]string{"outcome": "crash", "attempts": "3"}},
		{ID: 5, Kind: KindSuite, Name: "S"},
		{ID: 6, Parent: 5, Kind: KindCase, Name: "TC0", Attrs: map[string]string{"outcome": "pass"}},
	}
	ta, tb := Tree(a), Tree(b)
	if !EqualForests(ta, tb) {
		t.Errorf("forests differ:\n%s\nvs\n%s", RenderForest(ta), RenderForest(tb))
	}
	c := append([]Span(nil), a...)
	c[2].Attrs = map[string]string{"outcome": "pass"} // structural difference
	if EqualForests(ta, Tree(c)) {
		t.Error("forests with different attrs must differ")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Inc("case.pass", 1)
			m.Observe("case.duration", "TC", time.Duration(i+1)*time.Millisecond)
		}(i)
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Counters["case.pass"] != 8 {
		t.Errorf("counter = %d", snap.Counters["case.pass"])
	}
	h := snap.Durations["case.duration"]
	if h.Count != 8 || h.MinUS != 1000 || h.MaxUS != 8000 {
		t.Errorf("hist = %+v", h)
	}
	if len(snap.Slowest["case.duration"]) != 8 {
		t.Errorf("slowest = %+v", snap.Slowest["case.duration"])
	}
	if snap.Slowest["case.duration"][0].DurUS != 8000 {
		t.Error("slowest list not sorted descending")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["case.pass"] != 8 {
		t.Error("snapshot did not round-trip")
	}
}

func TestSlowestNCapsAtTen(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 25; i++ {
		m.Observe("d", "L", time.Duration(i)*time.Microsecond)
	}
	if got := len(m.Snapshot().Slowest["d"]); got != slowestN {
		t.Errorf("slowest kept %d entries, want %d", got, slowestN)
	}
}

func TestBucketLabel(t *testing.T) {
	if l := bucketLabel(50); l != "<=100µs" {
		t.Errorf("bucketLabel(50us) = %q", l)
	}
	if l := bucketLabel(500_000_000); l != "+Inf" {
		t.Errorf("bucketLabel(500s) = %q", l)
	}
}
