package mutation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"concat/internal/domain"
)

// SiteID names one non-interface variable use point inside a method, e.g.
// "Sort1/min.use1". Site IDs are unique per component.
type SiteID string

// Site declares one mutable use point: the method it sits in, the variable
// being used, its kind, and the candidate replacement names per operator
// class. The candidate lists are the producer's static declaration of
// L(R2), G(R2) and E(R2) for that point; the values are looked up
// dynamically in the Env the instrumented code passes at run time.
type Site struct {
	ID     SiteID
	Method string
	Var    string      // the non-interface variable used here
	Kind   domain.Kind // kind of the value flowing through the site
	// Locals: other locals of the method with compatible kind (L(R2) minus
	// the used variable itself).
	Locals []string
	// Globals: class attributes used in the method (G(R2)).
	Globals []string
	// Externals: package/class globals NOT used in the method (E(R2)).
	Externals []string
}

// Env carries the live values of replacement candidates at the moment an
// instrumented use executes. Keys are candidate names from the Site
// declaration. Missing keys leave the original value untouched (the
// candidate is not live at this point).
type Env struct {
	Locals    map[string]domain.Value
	Globals   map[string]domain.Value
	Externals map[string]domain.Value
}

// Mutant is one injected fault: at Site, apply Operator (with Replacement
// naming the candidate or constant).
type Mutant struct {
	ID          string
	Site        SiteID
	Method      string
	Operator    Operator
	Replacement string       // candidate name, or constant literal for OpRepReq
	Constant    domain.Value // set for OpRepReq
}

// String renders the mutant identity.
func (m Mutant) String() string { return m.ID }

// Engine owns a component's site table and the currently active mutant.
// The instrumented component code calls Use* at each declared site; with no
// active mutant the call is a cheap pass-through, with an active mutant on
// another site likewise, and on the matching site the engine substitutes
// the operator-dictated value.
//
// An Engine is safe for concurrent Use calls; activation is expected to
// happen between suite runs, not during them. An engine holds at most ONE
// active mutant — parallel mutation campaigns therefore run one engine per
// worker (see Clone), never one engine across workers.
type Engine struct {
	mu       sync.RWMutex
	sites    map[SiteID]Site
	active   *Mutant
	infected bool // did the active mutant ever change a value?
	reached  bool // was the active mutant's site ever executed?
}

// NewEngine returns an engine with an empty site table.
func NewEngine() *Engine {
	return &Engine{sites: make(map[SiteID]Site)}
}

// RegisterSite adds a use point to the table. Duplicate IDs are rejected.
func (e *Engine) RegisterSite(s Site) error {
	if s.ID == "" {
		return errors.New("mutation: site with empty ID")
	}
	if s.Method == "" {
		return fmt.Errorf("mutation: site %s has no method", s.ID)
	}
	if !s.Kind.Valid() {
		return fmt.Errorf("mutation: site %s has invalid kind", s.ID)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.sites[s.ID]; ok {
		return fmt.Errorf("mutation: duplicate site %s", s.ID)
	}
	s.Locals = append([]string(nil), s.Locals...)
	s.Globals = append([]string(nil), s.Globals...)
	s.Externals = append([]string(nil), s.Externals...)
	e.sites[s.ID] = s
	return nil
}

// MustRegisterSites registers a static site table; it panics on declaration
// errors, which are programming mistakes in the component package.
func (e *Engine) MustRegisterSites(sites ...Site) {
	for _, s := range sites {
		if err := e.RegisterSite(s); err != nil {
			panic(err)
		}
	}
}

// Sites returns the registered sites sorted by ID. The explicit sort makes
// site — and therefore mutant — ordering a function of the site table's
// CONTENT alone: two engines carrying the same sites enumerate identical
// mutant lists no matter what order the sites were registered in (or what
// order a map iteration would visit them). Stable mutant IDs and positions
// are what let parallel campaign workers, each holding its own engine,
// produce index-aligned results that merge into one deterministic table.
func (e *Engine) Sites() []Site {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Site, 0, len(e.sites))
	for _, s := range e.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clone returns a new engine carrying the same site table and no active
// mutant. Parallel mutation analysis provisions one clone per worker so
// mutants activate concurrently with no shared mutable state.
func (e *Engine) Clone() *Engine {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := &Engine{sites: make(map[SiteID]Site, len(e.sites))}
	for id, s := range e.sites {
		// Site slices are never mutated after registration; sharing them
		// between clones is safe and keeps provisioning cheap.
		out.sites[id] = s
	}
	return out
}

// Methods returns the sorted set of method names that have sites.
func (e *Engine) Methods() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	seen := map[string]bool{}
	for _, s := range e.sites {
		seen[s.Method] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Activate arms one mutant and clears the infection/reach flags. The mutant
// must reference a registered site.
func (e *Engine) Activate(m Mutant) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.sites[m.Site]; !ok {
		return fmt.Errorf("mutation: mutant %s references unknown site %s", m.ID, m.Site)
	}
	cp := m
	e.active = &cp
	e.infected = false
	e.reached = false
	return nil
}

// Deactivate disarms the engine (original-program behaviour).
func (e *Engine) Deactivate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active = nil
	e.infected = false
	e.reached = false
}

// Active returns the armed mutant, if any.
func (e *Engine) Active() (Mutant, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.active == nil {
		return Mutant{}, false
	}
	return *e.active, true
}

// Infected reports whether the armed mutant changed at least one value
// since activation. A mutant that completes the whole suite without ever
// infecting the state is equivalent on this test set — the automated
// analog of the paper's manual equivalence marking (see Analysis).
func (e *Engine) Infected() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.infected
}

// Reached reports whether the armed mutant's site executed since activation.
func (e *Engine) Reached() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.reached
}

// Use routes one variable use through the engine. The component passes the
// original value and the candidate environment; the engine returns the
// value the (possibly mutated) program sees.
func (e *Engine) Use(site SiteID, v domain.Value, env Env) domain.Value {
	e.mu.RLock()
	active := e.active
	e.mu.RUnlock()
	if active == nil || active.Site != site {
		return v
	}
	mutated, ok := applyOperator(*active, v, env)
	e.mu.Lock()
	e.reached = true
	if ok && !mutated.Equal(v) {
		e.infected = true
	}
	e.mu.Unlock()
	if !ok {
		return v
	}
	return mutated
}

// UseInt is the integer convenience wrapper around Use.
func (e *Engine) UseInt(site SiteID, v int64, env Env) int64 {
	out := e.Use(site, domain.Int(v), env)
	n, err := out.AsInt()
	if err != nil {
		return v // kind-incompatible replacement: leave the use unchanged
	}
	return n
}

// applyOperator computes the mutated value for one use. ok=false means the
// replacement is not applicable here (missing candidate or incompatible
// kind) and the use stays unmutated.
func applyOperator(m Mutant, v domain.Value, env Env) (domain.Value, bool) {
	switch m.Operator {
	case OpBitNeg:
		n, err := v.AsInt()
		if err != nil {
			return v, false
		}
		return domain.Int(^n), true
	case OpRepLoc:
		if out, ok := lookup(env.Locals, m.Replacement); ok {
			return out, true
		}
		// The replacement local is declared in the method but not yet live
		// at this point. In the paper's C++ setting this reads an
		// uninitialized variable — garbage, but deterministic enough to
		// compile and run. Model it as a fixed junk value of the site's
		// value kind so the mutant is executable and (usually) infectious.
		return garbageValue(v), true
	case OpRepGlob:
		return lookup(env.Globals, m.Replacement)
	case OpRepExt:
		return lookup(env.Externals, m.Replacement)
	case OpRepReq:
		if m.Constant.IsZero() {
			return v, false
		}
		return m.Constant, true
	default:
		return v, false
	}
}

// garbageValue is the deterministic "uninitialized C++ local" stand-in used
// by OpRepLoc when the replacement local is not live at the use point.
func garbageValue(like domain.Value) domain.Value {
	switch like.Kind() {
	case domain.KindInt:
		return domain.Int(-559038737) // 0xDEADBEEF as int32
	case domain.KindFloat:
		return domain.Float(-5.5903e8)
	case domain.KindString:
		return domain.Str("\xde\xad\xbe\xef")
	case domain.KindBool:
		return domain.Bool(true)
	default:
		return domain.Nil()
	}
}

func lookup(m map[string]domain.Value, name string) (domain.Value, bool) {
	if m == nil {
		return domain.Value{}, false
	}
	v, ok := m[name]
	if !ok || v.IsZero() {
		return domain.Value{}, false
	}
	return v, true
}

// Enumerate generates the mutant set for the given operators over the
// engine's site table, in deterministic order (sites sorted by ID,
// operators in Table 1 order, candidates in declaration order). methods, if
// non-empty, restricts generation to sites inside those methods — the
// paper's experiments mutate a chosen method subset.
func (e *Engine) Enumerate(ops []Operator, methods []string) []Mutant {
	if len(ops) == 0 {
		ops = AllOperators
	}
	methodSet := map[string]bool{}
	for _, m := range methods {
		methodSet[m] = true
	}
	var out []Mutant
	for _, s := range e.Sites() {
		if len(methodSet) > 0 && !methodSet[s.Method] {
			continue
		}
		for _, op := range ops {
			out = append(out, enumerateSite(s, op)...)
		}
	}
	return out
}

func enumerateSite(s Site, op Operator) []Mutant {
	mk := func(repl string, c domain.Value) Mutant {
		return Mutant{
			ID:          fmt.Sprintf("%s:%s(%s)", s.ID, op, repl),
			Site:        s.ID,
			Method:      s.Method,
			Operator:    op,
			Replacement: repl,
			Constant:    c,
		}
	}
	switch op {
	case OpBitNeg:
		if s.Kind != domain.KindInt {
			return nil
		}
		return []Mutant{mk("~", domain.Value{})}
	case OpRepLoc:
		return candidates(s, op, s.Locals, mk)
	case OpRepGlob:
		return candidates(s, op, s.Globals, mk)
	case OpRepExt:
		return candidates(s, op, s.Externals, mk)
	case OpRepReq:
		var out []Mutant
		for _, c := range RequiredConstants(s.Kind) {
			out = append(out, mk(c.String(), c))
		}
		return out
	default:
		return nil
	}
}

func candidates(s Site, op Operator, names []string, mk func(string, domain.Value) Mutant) []Mutant {
	out := make([]Mutant, 0, len(names))
	for _, name := range names {
		if name == s.Var {
			continue // replacing a variable by itself is the original program
		}
		out = append(out, mk(name, domain.Value{}))
	}
	return out
}

// Armed reports whether any mutant is active. Component instrumentation
// helpers check it before building their candidate environments, so the
// inactive fast path costs one read lock instead of three map allocations.
func (e *Engine) Armed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.active != nil
}
