// Command concat is the prototype tool of the paper (§3.1): it supports the
// construction and use of self-testable components — validating t-specs,
// rendering transaction flow models, generating executable test suites from
// a component's embedded specification, running them with the built-in test
// facilities enabled, deriving subclass suites incrementally, emitting
// standalone Go drivers, and evaluating test sets by interface mutation.
//
// Usage:
//
//	concat list
//	concat validate  <spec.tspec>
//	concat graph     <spec.tspec> [-highlight n1,n3,n5,n6]
//	concat paths     <spec.tspec> [-k N] [-criterion all-transactions|all-links|all-nodes]
//	concat gen       -component NAME | -spec FILE  [-seed N] [-expand] [-alt N] [-k N] [-out FILE]
//	concat run       -component NAME -suite FILE [-log FILE] [sandbox flags]
//	concat selftest  -component NAME [-seed N] [-expand] [-alt N] [-cache-dir DIR] [-cover FILE] [sandbox flags]
//	concat derive    -parent NAME -child NAME [-seed N] [-out FILE]
//	concat mutate    -component NAME [-methods M1,M2] [-seed N] [-v] [-cache-dir DIR] [-cover FILE] [-parallel N] [sandbox flags]
//	concat emit      -component NAME [-seed N] -import PATH -factory EXPR [-out FILE]
//	concat trace-validate [trace.ndjson | -]
//	concat cover     -artifact FILE [-dot]
//	concat serve     [-addr HOST:PORT] [-cache-dir DIR] [-journal DIR] [-workers N] [-queue N] [-max-retries N] [-drain-timeout D] [-shard-lease D] [-pprof] [-trace-buf N]
//	concat submit    [-addr URL] -component NAME [-seed N] [-distributed [-shards N]] [-wait]
//	concat status    [-addr URL] [-id ID]
//	concat work      [-coordinator URL] [-store-dir DIR] [-parallelism N] [-poll D] [-idle-exit D]
//
// The suite-running subcommands (run, selftest, soak, mutate) share the
// sandbox flags: -isolate executes every case in a crash-contained child
// process (the hidden `concat run-case` case server), -pool keeps the same
// containment but dispatches batches of cases to a pool of warm, long-lived
// workers (-pool-size N workers, -batch N cases per round-trip) so campaigns
// pay the process-spawn cost once per worker instead of once per case,
// -budget N bounds the cooperative steps a case may take, -max-transcript N
// caps its transcript, and -timeout D bounds its wall-clock time. They also share the
// observability flags: -trace FILE streams NDJSON spans (suite → case →
// call / child-spawn) and -metrics FILE writes an aggregated snapshot of
// counters and duration histograms at exit. Both are side channels —
// reports and tables are byte-identical with or without them.
//
// selftest and mutate additionally accept -cache-dir DIR, a
// content-addressed verdict store: a warm re-run of an unchanged campaign
// is served from the store (byte-identical output), and after a change only
// the affected mutants re-execute. `concat serve` shares one such store
// across all submitted campaigns.
//
// selftest and mutate also accept -cover FILE, writing the canonical-JSON
// coverage artifact: per-transaction/node/edge TFM coverage, the BIT
// assertion-site telemetry, and (for mutate) the mutant×case kill matrix
// with per-operator oracle attribution. The artifact is a pure function of
// the campaign, so serial/parallel and warm/cold runs write identical
// bytes. `concat cover` renders a stored artifact as text tables or, with
// -dot, as a heatmap overlay on the component's transaction flow model.
//
// # Exit codes
//
// concat exits 0 on success, 1 on any usage or execution error, and 2 when
// a campaign completes but its verdict is bad: a mutation campaign (mutate,
// or submit -wait) with surviving non-equivalent mutants, or an impact
// re-run whose final report has failing cases — distinguishing "the tool
// failed" from "the test set is inadequate" for CI pipelines.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"concat/internal/analysis"
	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/impact"
	"concat/internal/loadgen"
	"concat/internal/mutation"
	"concat/internal/obs"
	"concat/internal/sandbox"
	"concat/internal/serve"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tfm"
	"concat/internal/tspec"
)

// errSurvivors is the sentinel behind exit code 2: the campaign ran to
// completion, but the test set failed to kill every non-equivalent mutant.
var errSurvivors = errors.New("mutants survived")

// errCasesFailed is the impact-side face of exit code 2: the partitioned
// re-run completed, but some of the final report's cases did not pass.
var errCasesFailed = errors.New("test cases failed")

func main() {
	// When the executor re-executes this binary as a case server (the
	// ServerEnv sentinel is set), serve the one case and exit before any
	// argument handling.
	core.MaybeServeCase()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "concat:", err)
		if errors.Is(err, errSurvivors) || errors.Is(err, errCasesFailed) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// checkSurvivors maps a finished campaign table to the exit-code contract:
// nil when every non-equivalent mutant was killed, errSurvivors otherwise.
func checkSurvivors(t *analysis.Table) error {
	if surv := t.Total.Mutants - t.Total.Killed - t.Total.Equivalent; surv > 0 {
		return fmt.Errorf("%d non-equivalent %w the test set", surv, errSurvivors)
	}
	return nil
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usageError("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return cmdList(w)
	case "validate":
		return cmdValidate(rest, w)
	case "graph":
		return cmdGraph(rest, w)
	case "paths":
		return cmdPaths(rest, w)
	case "gen":
		return cmdGen(rest, w)
	case "run":
		return cmdRun(rest, w)
	case "selftest":
		return cmdSelfTest(rest, w)
	case "soak":
		return cmdSoak(rest, w)
	case "record":
		return cmdRecord(rest, w)
	case "regress":
		return cmdRegress(rest, w)
	case "derive":
		return cmdDerive(rest, w)
	case "mutate":
		return cmdMutate(rest, w)
	case "emit":
		return cmdEmit(rest, w)
	case "trace-validate":
		return cmdTraceValidate(rest, w)
	case "cover":
		return cmdCover(rest, w)
	case "impact":
		return cmdImpact(rest, w)
	case "spec":
		return cmdSpec(rest, w)
	case "serve":
		return cmdServe(rest, w)
	case "submit":
		return cmdSubmit(rest, w)
	case "status":
		return cmdStatus(rest, w)
	case "loadgen":
		return cmdLoadgen(rest, w)
	case "work":
		return cmdWork(rest, w)
	case "run-case":
		// Hidden: the subprocess-isolation case server (see -isolate). Reads
		// one case request on stdin, writes the result on stdout.
		return core.ServeOneCase(os.Stdin, w)
	case "help", "-h", "--help":
		printUsage(w)
		return nil
	default:
		return usageError("unknown subcommand " + cmd)
	}
}

func usageError(msg string) error {
	return fmt.Errorf("%s (run 'concat help')", msg)
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, `concat — construction and use of self-testable components

subcommands:
  list       list the built-in self-testable components
  validate   parse and validate a t-spec file
  graph      render a t-spec's transaction flow model as Graphviz DOT
  paths      enumerate the transactions of a t-spec's model
  gen        generate an executable test suite from a t-spec
  run        execute a saved suite against a built-in component
  selftest   generate and execute in one step
  soak       random-walk (endurance) testing: sample and run random transactions
  record     run a suite and record its outputs as the golden reference
  regress    re-run a suite against a recorded golden reference (§2.4 regression testing)
  derive     derive a subclass suite with hierarchical incremental reuse
  mutate     evaluate a test set by interface mutation (Table 1 operators)
  emit       emit a standalone Go driver source for a suite
  trace-validate  check an NDJSON trace file (or - for stdin) against the span schema
  cover      render a stored coverage artifact (or - for stdin) as tables or a DOT heatmap
  impact     diff two t-spec revisions and re-run only the invalidated cases
  spec       export a t-spec (built-in or file) as canonical JSON
  serve      run the campaign service: an HTTP/JSON API over a job queue
  submit     submit a campaign to a running service (add -wait for the report)
  status     query a running service for campaign statuses
  loadgen    drive a running service with concurrent load and measure it
  work       run a remote campaign worker: lease shards from a coordinator

run, selftest, soak and mutate accept the sandbox flags: -isolate spawns
one crash-contained child per case; -pool dispatches batches of cases
(-batch N) to a pool of warm workers (-pool-size N) for the same
containment at a fraction of the spawn cost. Both modes produce reports
byte-identical to in-process execution.

run, selftest, soak and mutate accept -trace FILE (stream NDJSON spans)
and -metrics FILE (write an aggregated JSON snapshot at exit); both are
side channels that never change reports or tables.

selftest, mutate and serve accept -cache-dir DIR, a content-addressed
verdict store: unchanged campaigns are served from the store with
byte-identical output, and only mutants whose inputs changed re-execute.

serve additionally accepts -journal DIR, a write-ahead job journal:
submissions are journaled before they run, and a restarted service
replays pending and running campaigns — warm store hits make the replay
byte-identical. Crashed or wedged campaigns retry with capped exponential
backoff up to -max-retries times before quarantine, and SIGTERM drains
gracefully within -drain-timeout (default 30s).

submit -distributed (with -shards N, default 2) asks the service to fan the
campaign's mutants out to remote "concat work" processes, which lease
shards over HTTP, publish verdicts into the service's shared store, and
report back; the coordinator then merges warm from the store, so the
multi-worker report and coverage artifact are byte-identical to a
single-process run. Workers default to the coordinator's own /store
mount; -store-dir points them at a shared filesystem store instead.

loadgen drives a running service with -submitters N concurrent campaign
submitters and -subscribers M /events stream consumers for a fixed
-requests budget, measures client-side throughput and per-endpoint
p50/p95/p99 latency, verifies the 503 + Retry-After backpressure contract
under queue saturation, and cross-checks the service's /metrics request
counters against its own counts series by series; -json FILE writes the
measurement (BENCH_SERVICE.json by convention).

selftest and mutate accept -cover FILE, writing a canonical-JSON coverage
artifact (TFM transaction/node/edge coverage, BIT assertion-site telemetry,
and for mutate the kill matrix with per-operator oracle attribution);
identical campaigns write identical artifact bytes. The service exposes the
same artifact at /campaigns/{id}/coverage, live Prometheus metrics at
/metrics, and (with -pprof) net/http/pprof under /debug/pprof/.

impact -old A -new B diffs two revisions of a component's t-spec (either
notation; at most one may be - for stdin), computes the invalidated cases,
executes only those, and replays the rest byte-identically from the
-cache-dir verdict store; the final report and -cover artifact match a cold
full run on the new spec. -json prints the canonical impact artifact
(kept/re-run/regenerated counts, per-transaction reasons, cache accounting)
instead of the table; -artifact and -report save the artifact and the final
suite report to files. `+"`concat spec`"+` exports a built-in component's
embedded t-spec as the JSON that impact, gen and validate accept.

exit codes: 0 success; 1 error; 2 campaign finished but non-equivalent
mutants survived (mutate, submit -wait) or an impact re-run's final report
has failing cases (impact).`)
}

// loadSpecFile reads a t-spec in either notation: the textual form of
// Figure 3, or the canonical JSON wire form (`concat spec` output) —
// detected by the leading byte.
func loadSpecFile(path string) (*tspec.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading spec: %w", err)
	}
	return parseSpecBytes(data)
}

// loadSpecArg is loadSpecFile with the stdin convention: "-" reads the spec
// from standard input.
func loadSpecArg(path string) (*tspec.Spec, error) {
	if path != "-" {
		return loadSpecFile(path)
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return nil, fmt.Errorf("reading spec from stdin: %w", err)
	}
	return parseSpecBytes(data)
}

func parseSpecBytes(data []byte) (*tspec.Spec, error) {
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		return tspec.LoadJSON(bytes.NewReader(trimmed))
	}
	s, err := tspec.Parse(string(data))
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// resolveSpec loads a spec from -spec FILE or a built-in -component NAME.
func resolveSpec(componentName, specPath string) (*tspec.Spec, error) {
	switch {
	case componentName != "" && specPath != "":
		return nil, usageError("-component and -spec are mutually exclusive")
	case componentName != "":
		t, err := core.LookupTarget(componentName)
		if err != nil {
			return nil, err
		}
		return t.New(nil).Spec(), nil
	case specPath != "":
		return loadSpecFile(specPath)
	default:
		return nil, usageError("need -component NAME or -spec FILE")
	}
}

func outWriter(path string, w io.Writer) (io.Writer, func() error, error) {
	if path == "" {
		return w, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("creating %s: %w", path, err)
	}
	return f, f.Close, nil
}

func cmdList(w io.Writer) error {
	reg, err := core.Registry()
	if err != nil {
		return err
	}
	for _, name := range reg.Names() {
		f, err := reg.Lookup(name)
		if err != nil {
			return err
		}
		g, err := f.Spec().TFM()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %d methods, model: %s\n", name, len(f.Spec().Methods), g.Stats())
	}
	return nil
}

func cmdValidate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageError("validate takes one spec file")
	}
	s, err := loadSpecFile(fs.Arg(0))
	if err != nil {
		return err
	}
	g, err := s.TFM()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "spec %q is valid: %d attributes, %d methods, model %s\n",
		s.Class.Name, len(s.Attributes), len(s.Methods), g.Stats())
	return nil
}

func cmdGraph(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	highlight := fs.String("highlight", "", "comma-separated node path to highlight")
	component := fs.String("component", "", "built-in component name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec *tspec.Spec
	var err error
	if fs.NArg() == 1 {
		spec, err = loadSpecFile(fs.Arg(0))
	} else {
		spec, err = resolveSpec(*component, "")
	}
	if err != nil {
		return err
	}
	g, err := spec.TFM()
	if err != nil {
		return err
	}
	var hl tfm.Transaction
	if *highlight != "" {
		for _, n := range strings.Split(*highlight, ",") {
			hl.Path = append(hl.Path, tfm.NodeID(strings.TrimSpace(n)))
		}
	}
	return g.WriteDOT(w, hl)
}

func cmdPaths(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paths", flag.ContinueOnError)
	k := fs.Int("k", 1, "loop bound")
	criterion := fs.String("criterion", "all-transactions", "coverage criterion")
	component := fs.String("component", "", "built-in component name")
	limit := fs.Int("limit", 0, "maximum transactions (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec *tspec.Spec
	var err error
	if fs.NArg() == 1 {
		spec, err = loadSpecFile(fs.Arg(0))
	} else {
		spec, err = resolveSpec(*component, "")
	}
	if err != nil {
		return err
	}
	g, err := spec.TFM()
	if err != nil {
		return err
	}
	crit, err := parseCriterion(*criterion)
	if err != nil {
		return err
	}
	ts, err := g.Select(crit, tfm.EnumOptions{LoopBound: *k, MaxTransactions: *limit})
	if err != nil && len(ts) == 0 {
		return err
	}
	for i, tr := range ts {
		fmt.Fprintf(w, "%4d  %s\n", i, tr)
	}
	fmt.Fprintf(w, "%d transactions (%s, loop bound %d)\n", len(ts), crit, *k)
	if err != nil {
		fmt.Fprintf(w, "warning: %v\n", err)
	}
	return nil
}

func parseCriterion(s string) (tfm.Criterion, error) {
	switch s {
	case "all-transactions":
		return tfm.CoverTransactions, nil
	case "all-links":
		return tfm.CoverLinks, nil
	case "all-nodes":
		return tfm.CoverNodes, nil
	default:
		return 0, fmt.Errorf("unknown criterion %q", s)
	}
}

type genFlags struct {
	seed   int64
	expand bool
	alt    int
	k      int
}

func addGenFlags(fs *flag.FlagSet) *genFlags {
	g := &genFlags{}
	fs.Int64Var(&g.seed, "seed", 42, "generation seed")
	fs.BoolVar(&g.expand, "expand", false, "expand node method alternatives")
	fs.IntVar(&g.alt, "alt", 4, "alternative expansion cap")
	fs.IntVar(&g.k, "k", 1, "transaction enumeration loop bound")
	return g
}

func (g *genFlags) options() driver.Options {
	return driver.Options{
		Seed:               g.seed,
		ExpandAlternatives: g.expand,
		MaxAlternatives:    g.alt,
		Enum:               tfm.EnumOptions{LoopBound: g.k},
	}
}

// sandboxFlags are the execution-hardening knobs shared by the suite-running
// subcommands (run, selftest, soak, mutate).
type sandboxFlags struct {
	isolate       bool
	pool          bool
	poolSize      int
	batch         int
	budget        int64
	maxTranscript int64
	timeout       time.Duration
}

func addSandboxFlags(fs *flag.FlagSet) *sandboxFlags {
	s := &sandboxFlags{}
	fs.BoolVar(&s.isolate, "isolate", false, "run every case in a crash-contained child process")
	fs.BoolVar(&s.pool, "pool", false, "crash-contained execution on a pool of warm worker processes (batched dispatch; implies isolation)")
	fs.IntVar(&s.poolSize, "pool-size", 0, "warm worker pool size for -pool (0 = parallelism)")
	fs.IntVar(&s.batch, "batch", 0, "cases dispatched per -pool worker round-trip (0 = default)")
	fs.Int64Var(&s.budget, "budget", 0, "per-case cooperative step budget (0 = unbounded)")
	fs.Int64Var(&s.maxTranscript, "max-transcript", 0, "per-case transcript cap in bytes (0 = unbounded)")
	fs.DurationVar(&s.timeout, "timeout", 0, "per-case wall-clock timeout, e.g. 2s (0 = none)")
	return s
}

// apply overlays the sandbox flags on a base set of execution options.
// -pool wins over -isolate: both contain crashes in child processes, the
// pool just amortizes the spawns.
func (s *sandboxFlags) apply(o testexec.Options) testexec.Options {
	if s.pool {
		o.Isolation = testexec.IsolatePool
		o.PoolSize = s.poolSize
		o.BatchSize = s.batch
	} else if s.isolate {
		o.Isolation = testexec.IsolateSubprocess
	}
	o.StepBudget = s.budget
	o.MaxTranscriptBytes = s.maxTranscript
	o.CaseTimeout = s.timeout
	return o
}

// obsFlags are the observability knobs shared by the suite-running
// subcommands: -trace streams NDJSON spans, -metrics writes an aggregated
// snapshot at exit. Both are side channels — reports and tables are
// byte-identical with or without them.
type obsFlags struct {
	tracePath   string
	metricsPath string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.tracePath, "trace", "", "write NDJSON trace spans to this file")
	fs.StringVar(&o.metricsPath, "metrics", "", "write an aggregated metrics snapshot (JSON) to this file")
	return o
}

// obsSession is the live tracer/metrics pair for one subcommand run.
type obsSession struct {
	Trace     *obs.Tracer
	Metrics   *obs.Metrics
	traceFile *os.File
	flags     *obsFlags
}

// session opens the trace sink and allocates the metrics aggregator per
// the flags. Both stay nil when their flag is unset — the nil values are
// the disabled implementations.
func (o *obsFlags) session() (*obsSession, error) {
	s := &obsSession{flags: o}
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return nil, fmt.Errorf("creating trace file: %w", err)
		}
		s.traceFile = f
		s.Trace = obs.NewTracer(f)
	}
	if o.metricsPath != "" {
		s.Metrics = obs.NewMetrics()
	}
	return s, nil
}

// apply overlays the session on a base set of execution options.
func (s *obsSession) apply(o testexec.Options) testexec.Options {
	o.Trace = s.Trace
	o.Metrics = s.Metrics
	return o
}

// close flushes the metrics snapshot and closes the trace sink, surfacing
// the first deferred I/O error.
func (s *obsSession) close() error {
	var first error
	if err := s.Trace.Err(); err != nil {
		first = err
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("closing trace file: %w", err)
		}
	}
	if s.Metrics != nil {
		f, err := os.Create(s.flags.metricsPath)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("creating metrics file: %w", err)
			}
			return first
		}
		if err := s.Metrics.Snapshot().WriteJSON(f); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func cmdGen(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	specPath := fs.String("spec", "", "t-spec file")
	out := fs.String("out", "", "output file (default stdout)")
	gf := addGenFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := resolveSpec(*component, *specPath)
	if err != nil {
		return err
	}
	suite, err := driver.Generate(spec, gf.options())
	if err != nil {
		return err
	}
	dst, closeFn, err := outWriter(*out, w)
	if err != nil {
		return err
	}
	if err := suite.Save(dst); err != nil {
		_ = closeFn()
		return err
	}
	if err := closeFn(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s for %s (seed %d)\n", suite.Stats(), spec.Class.Name, gf.seed)
	return nil
}

func cmdRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	suitePath := fs.String("suite", "", "suite JSON file")
	logPath := fs.String("log", "", "write the Result.txt-style log to this file")
	sf := addSandboxFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *component == "" || *suitePath == "" {
		return usageError("run needs -component and -suite")
	}
	t, err := core.LookupTarget(*component)
	if err != nil {
		return err
	}
	f, err := os.Open(*suitePath)
	if err != nil {
		return fmt.Errorf("opening suite: %w", err)
	}
	defer f.Close()
	suite, err := driver.Load(f)
	if err != nil {
		return err
	}
	comp := t.New(nil)
	logDst, closeFn, err := outWriter(*logPath, io.Discard)
	if err != nil {
		return err
	}
	session, err := of.session()
	if err != nil {
		return err
	}
	rep, err := comp.RunSuite(suite, session.apply(sf.apply(testexec.Options{LogWriter: logDst})))
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	if cerr := session.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	printReport(w, rep)
	if !rep.AllPassed() {
		return fmt.Errorf("%d test cases did not pass", len(rep.Failures()))
	}
	return nil
}

func cmdSelfTest(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("selftest", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	cacheDir := fs.String("cache-dir", "", "content-addressed report store directory (unchanged runs are served from it)")
	coverPath := fs.String("cover", "", "write the canonical coverage artifact JSON to this file")
	gf := addGenFlags(fs)
	sf := addSandboxFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *component == "" {
		return usageError("selftest needs -component")
	}
	t, err := core.LookupTarget(*component)
	if err != nil {
		return err
	}
	comp := t.New(nil)
	st, err := openStore(*cacheDir)
	if err != nil {
		return err
	}
	session, err := of.session()
	if err != nil {
		return err
	}
	suite, err := comp.GenerateSuite(gf.options())
	if err != nil {
		_ = session.close()
		return fmt.Errorf("self-test of %q: %w", t.Name, err)
	}
	rep, cached, err := comp.RunSuiteCached(suite, session.apply(sf.apply(testexec.Options{})), st)
	if cerr := session.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("self-test of %q: %w", t.Name, err)
	}
	if cached {
		// Stderr, not w: cached and fresh runs print identical reports.
		fmt.Fprintf(os.Stderr, "cache: report served from %s\n", st.Dir())
	}
	fmt.Fprintf(w, "%s: %s\n", t.Name, suite.Stats())
	printReport(w, rep)
	if *coverPath != "" {
		g, err := comp.Spec().TFM()
		if err != nil {
			return err
		}
		art, err := cover.FromRun(g, suite, rep)
		if err != nil {
			return err
		}
		if err := writeArtifact(art, *coverPath, w); err != nil {
			return err
		}
	}
	if !rep.AllPassed() {
		return fmt.Errorf("%d test cases did not pass", len(rep.Failures()))
	}
	return nil
}

// loadComponentAndSuite resolves the shared -component/-suite flag pair.
func loadComponentAndSuite(componentName, suitePath string) (*core.Component, *driver.Suite, error) {
	if componentName == "" || suitePath == "" {
		return nil, nil, usageError("need -component and -suite")
	}
	t, err := core.LookupTarget(componentName)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(suitePath)
	if err != nil {
		return nil, nil, fmt.Errorf("opening suite: %w", err)
	}
	defer f.Close()
	suite, err := driver.Load(f)
	if err != nil {
		return nil, nil, err
	}
	return t.New(nil), suite, nil
}

// cmdRecord runs a suite against the current component build and stores the
// observable outputs as the golden reference — the producer-side half of
// the paper's regression-testing use of embedded suites (§2.4).
func cmdRecord(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	suitePath := fs.String("suite", "", "suite JSON file")
	goldenPath := fs.String("golden", "", "output file for the golden reference")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *goldenPath == "" {
		return usageError("record needs -golden FILE")
	}
	comp, suite, err := loadComponentAndSuite(*component, *suitePath)
	if err != nil {
		return err
	}
	rep, err := comp.RunSuite(suite, testexec.Options{})
	if err != nil {
		return err
	}
	for _, res := range rep.Results {
		if res.Outcome == testexec.OutcomeError {
			return fmt.Errorf("case %s has a harness error (%s); refusing to record a broken reference",
				res.CaseID, res.Detail)
		}
	}
	f, err := os.Create(*goldenPath)
	if err != nil {
		return err
	}
	golden := testexec.NewGolden(rep)
	if err := golden.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded golden reference for %s: %d cases -> %s\n",
		suite.Component, len(rep.Results), *goldenPath)
	return nil
}

// cmdRegress re-runs a suite and compares every case's observable output
// against the recorded reference — the consumer-side regression check after
// a new component release (the paper's CObList-maintenance scenario).
func cmdRegress(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	suitePath := fs.String("suite", "", "suite JSON file")
	goldenPath := fs.String("golden", "", "golden reference file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *goldenPath == "" {
		return usageError("regress needs -golden FILE")
	}
	comp, suite, err := loadComponentAndSuite(*component, *suitePath)
	if err != nil {
		return err
	}
	gf, err := os.Open(*goldenPath)
	if err != nil {
		return fmt.Errorf("opening golden reference: %w", err)
	}
	golden, err := testexec.LoadGolden(gf)
	closeErr := gf.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	if golden.Component != suite.Component {
		return fmt.Errorf("golden reference is for %q, suite for %q", golden.Component, suite.Component)
	}
	rep, err := comp.RunSuite(suite, testexec.Options{Oracle: golden})
	if err != nil {
		return err
	}
	printReport(w, rep)
	if !rep.AllPassed() {
		return fmt.Errorf("regression detected: %d cases deviate from the recorded behaviour",
			len(rep.Failures()))
	}
	fmt.Fprintln(w, "no regressions: behaviour matches the recorded reference")
	return nil
}

func cmdSoak(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	cases := fs.Int("cases", 200, "number of random transactions")
	maxLen := fs.Int("maxlen", 0, "maximum walk length (0 = 4x node count)")
	seed := fs.Int64("seed", 42, "generation seed")
	walkBudget := fs.Int64("walk-budget", 0, "per-case generation step budget (0 = unbounded)")
	sf := addSandboxFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *component == "" {
		return usageError("soak needs -component")
	}
	t, err := core.LookupTarget(*component)
	if err != nil {
		return err
	}
	comp := t.New(nil)
	session, err := of.session()
	if err != nil {
		return err
	}
	suite, err := driver.GenerateSoak(comp.Spec(), driver.SoakOptions{
		Seed: *seed, Cases: *cases, MaxLength: *maxLen, StepBudget: *walkBudget,
		Trace: session.Trace, Metrics: session.Metrics,
	})
	if err != nil {
		_ = session.close()
		return err
	}
	fmt.Fprintf(w, "soak suite: %s\n", suite.Stats())
	rep, err := comp.RunSuite(suite, session.apply(sf.apply(testexec.Options{})))
	if cerr := session.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	printReport(w, rep)
	if !rep.AllPassed() {
		return fmt.Errorf("%d soak cases did not pass", len(rep.Failures()))
	}
	return nil
}

func cmdDerive(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("derive", flag.ContinueOnError)
	parent := fs.String("parent", "", "parent component name")
	child := fs.String("child", "", "child component name")
	out := fs.String("out", "", "write the derived suite JSON here")
	gf := addGenFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parent == "" || *child == "" {
		return usageError("derive needs -parent and -child")
	}
	pt, err := core.LookupTarget(*parent)
	if err != nil {
		return err
	}
	ct, err := core.LookupTarget(*child)
	if err != nil {
		return err
	}
	pc, cc := pt.New(nil), ct.New(nil)
	parentSuite, err := pc.GenerateSuite(gf.options())
	if err != nil {
		return err
	}
	d, err := core.DeriveSubclass(pc, cc, parentSuite, gf.options())
	if err != nil {
		return err
	}
	skip, reuse, regen := d.Plan.Counts()
	fmt.Fprintf(w, "derived suite for %s (parent %s):\n", *child, *parent)
	fmt.Fprintf(w, "  transactions: %d skipped, %d reused, %d regenerated\n", skip, reuse, regen)
	fmt.Fprintf(w, "  test cases:   %d new, %d reused from parent, %d parent cases skipped\n",
		d.NumNew, d.NumReused, d.NumSkipped)
	inh, red, nw := d.Plan.Classification.Counts()
	fmt.Fprintf(w, "  methods:      %d inherited, %d redefined, %d new\n", inh, red, nw)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := d.Suite.Save(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// writeArtifact encodes a coverage artifact canonically and writes it to
// path, echoing the one-line summary to w.
func writeArtifact(art *cover.Artifact, path string, w io.Writer) error {
	enc, err := art.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return fmt.Errorf("writing coverage artifact: %w", err)
	}
	fmt.Fprintf(w, "%s -> %s\n", art.Suite.Summary(), path)
	return nil
}

// componentGraph rebuilds the component's transaction flow model from its
// embedded t-spec — the graph coverage artifacts are keyed to.
func componentGraph(name string) (*tfm.Graph, error) {
	t, err := core.LookupTarget(name)
	if err != nil {
		return nil, err
	}
	return t.New(nil).Spec().TFM()
}

// openStore opens the content-addressed verdict store at dir; an empty dir
// is the disabled (nil) store.
func openStore(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return store.Open(dir)
}

func cmdMutate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mutate", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	methods := fs.String("methods", "", "comma-separated methods to mutate (default: the component's experiment methods)")
	verbose := fs.Bool("v", false, "print per-mutant verdicts")
	cacheDir := fs.String("cache-dir", "", "content-addressed verdict store directory (warm re-runs skip unchanged mutants)")
	coverPath := fs.String("cover", "", "write the canonical coverage artifact JSON (kill matrix included) to this file")
	parallel := fs.Int("parallel", 0, "mutant workers (0 or 1 = serial; results are identical either way)")
	gf := addGenFlags(fs)
	sf := addSandboxFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *component == "" {
		return usageError("mutate needs -component")
	}
	t, err := core.LookupTarget(*component)
	if err != nil {
		return err
	}
	comp := t.New(nil)
	suite, err := comp.GenerateSuite(gf.options())
	if err != nil {
		return err
	}
	var methodList []string
	if *methods != "" {
		for _, m := range strings.Split(*methods, ",") {
			methodList = append(methodList, strings.TrimSpace(m))
		}
	}
	var progress io.Writer
	if *verbose {
		progress = w
	}
	st, err := openStore(*cacheDir)
	if err != nil {
		return err
	}
	session, err := of.session()
	if err != nil {
		return err
	}
	res, err := core.MutationRunOpts(*component, suite, methodList, progress,
		core.MutationOptions{
			Exec:        session.apply(sf.apply(testexec.Options{})),
			Store:       st,
			Parallelism: *parallel,
		})
	if cerr := session.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if st != nil {
		// Stderr, not w: the rendered table must stay byte-identical with
		// and without a cache.
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%s)\n",
			res.CacheHits, res.CacheMisses, st.Dir())
	}
	table := res.Tabulate()
	if err := table.Render(w); err != nil {
		return err
	}
	if *coverPath != "" {
		g, err := comp.Spec().TFM()
		if err != nil {
			return err
		}
		art, err := cover.FromCampaign(g, suite, res)
		if err != nil {
			return err
		}
		if err := writeArtifact(art, *coverPath, w); err != nil {
			return err
		}
	}
	return checkSurvivors(table)
}

func cmdEmit(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("emit", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	specPath := fs.String("spec", "", "t-spec file")
	importPath := fs.String("import", "", "import path of the factory package")
	factory := fs.String("factory", "", "factory construction expression")
	out := fs.String("out", "", "output file (default stdout)")
	gf := addGenFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := resolveSpec(*component, *specPath)
	if err != nil {
		return err
	}
	suite, err := driver.Generate(spec, gf.options())
	if err != nil {
		return err
	}
	dst, closeFn, err := outWriter(*out, w)
	if err != nil {
		return err
	}
	err = driver.Emit(dst, suite, driver.EmitOptions{
		ComponentImport: *importPath,
		FactoryExpr:     *factory,
	})
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

// cmdTraceValidate checks an emitted NDJSON trace against the span
// schema: every line a valid span, IDs unique, parent references
// resolvable, kinds known. CI runs it on hostile-suite traces to catch
// schema drift.
func cmdTraceValidate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace-validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return usageError("trace-validate takes one NDJSON trace file, or - (or no argument) for stdin")
	}
	var r io.Reader = os.Stdin
	name := "stdin"
	if fs.NArg() == 1 && fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return fmt.Errorf("opening trace: %w", err)
		}
		defer f.Close()
		r = f
		name = fs.Arg(0)
	}
	n, err := obs.ValidateNDJSON(r)
	if err != nil {
		return fmt.Errorf("trace %s: %w", name, err)
	}
	fmt.Fprintf(w, "trace %s: %d spans, schema-valid\n", name, n)
	return nil
}

// cmdCover renders a stored coverage artifact — written by `selftest
// -cover`, `mutate -cover`, or fetched from the service's /coverage
// endpoint — as text tables, or with -dot as a heatmap overlay on the
// component's transaction flow model. It re-runs nothing: everything comes
// from the artifact, with only the graph rebuilt from the built-in
// component's embedded t-spec.
func cmdCover(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cover", flag.ContinueOnError)
	artifact := fs.String("artifact", "", "coverage artifact JSON file")
	dot := fs.Bool("dot", false, "emit a Graphviz DOT heatmap of the TFM instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *artifact
	if path == "" && fs.NArg() == 1 {
		path = fs.Arg(0)
	}
	if path == "" {
		return usageError("cover needs -artifact FILE or - (or a positional artifact path)")
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("opening artifact: %w", err)
		}
		defer f.Close()
		r = f
	}
	art, err := cover.Load(r)
	if err != nil {
		return err
	}
	if *dot {
		g, err := componentGraph(art.Component)
		if err != nil {
			return fmt.Errorf("rebuilding the TFM for %q: %w", art.Component, err)
		}
		return art.WriteHeatmap(w, g)
	}
	return art.Render(w)
}

// cmdImpact is the test-impact analysis engine's CLI: diff two revisions of
// a component's t-spec, execute only the cases the edit invalidates, and
// replay everything else byte-identically from the verdict store. The final
// report (and -cover artifact) are identical to a cold full run on the new
// spec; the impact artifact records what was kept, re-run or regenerated
// and why.
func cmdImpact(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("impact", flag.ContinueOnError)
	oldPath := fs.String("old", "", "old t-spec revision (text or JSON; - for stdin)")
	newPath := fs.String("new", "", "new t-spec revision (text or JSON; - for stdin)")
	component := fs.String("component", "", "built-in component to execute against (default: the new spec's class)")
	cacheDir := fs.String("cache-dir", "", "content-addressed verdict store backing warm replay")
	parallel := fs.Int("parallel", 0, "concurrent case executions (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "print the canonical impact artifact instead of the table")
	artifactPath := fs.String("artifact", "", "write the impact artifact JSON to this file")
	coverPath := fs.String("cover", "", "write the final run's coverage artifact JSON to this file")
	reportPath := fs.String("report", "", "write the final suite report text to this file")
	gf := addGenFlags(fs)
	sf := addSandboxFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return usageError("impact needs -old FILE and -new FILE")
	}
	if *oldPath == "-" && *newPath == "-" {
		return usageError("only one of -old/-new may read from stdin")
	}
	oldSpec, err := loadSpecArg(*oldPath)
	if err != nil {
		return fmt.Errorf("old spec: %w", err)
	}
	newSpec, err := loadSpecArg(*newPath)
	if err != nil {
		return fmt.Errorf("new spec: %w", err)
	}
	name := *component
	if name == "" {
		name = newSpec.Class.Name
	}
	t, err := core.LookupTarget(name)
	if err != nil {
		return err
	}
	st, err := openStore(*cacheDir)
	if err != nil {
		return err
	}
	session, err := of.session()
	if err != nil {
		return err
	}
	comp := t.New(nil)
	r := &impact.Runner{
		Factory:       comp.Factory,
		Providers:     comp.Providers,
		Gen:           gf.options(),
		Exec:          session.apply(sf.apply(testexec.Options{})),
		Store:         st,
		Parallelism:   *parallel,
		MutantMethods: mutantMethods(t),
	}
	res, err := r.Run(oldSpec, newSpec)
	if cerr := session.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("impact analysis of %q: %w", name, err)
	}
	if *jsonOut {
		raw, err := res.Report.Encode()
		if err != nil {
			return err
		}
		if _, err := w.Write(raw); err != nil {
			return err
		}
	} else {
		if err := res.Report.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %s\n", name, res.Suite.Stats())
		printReport(w, res.Final)
	}
	if *artifactPath != "" {
		raw, err := res.Report.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*artifactPath, raw, 0o644); err != nil {
			return fmt.Errorf("writing impact artifact: %w", err)
		}
	}
	if *coverPath != "" {
		dst := w
		if *jsonOut {
			dst = io.Discard
		}
		if err := writeArtifact(res.Coverage, *coverPath, dst); err != nil {
			return err
		}
	}
	if *reportPath != "" {
		var buf bytes.Buffer
		printReport(&buf, res.Final)
		if err := os.WriteFile(*reportPath, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing final report: %w", err)
		}
	}
	if !res.Final.AllPassed() {
		return fmt.Errorf("impact re-run: %d %w", len(res.Final.Failures()), errCasesFailed)
	}
	return nil
}

// mutantMethods enumerates the target's mutants (over its experiment
// methods) and returns one method name per mutant, for the impact report's
// mutant accounting. Components without instrumentation yield nil.
func mutantMethods(t core.Target) []string {
	if len(t.Sites) == 0 || len(t.ExperimentMethods) == 0 {
		return nil
	}
	eng := mutation.NewEngine()
	for _, s := range t.Sites {
		if err := eng.RegisterSite(s); err != nil {
			return nil
		}
	}
	var out []string
	for _, m := range eng.Enumerate(nil, t.ExperimentMethods) {
		out = append(out, m.Method)
	}
	return out
}

// cmdSpec exports a t-spec — a built-in component's embedded one, or a
// textual spec file — as the canonical JSON wire form that impact, gen,
// validate and the service accept.
func cmdSpec(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	component := fs.String("component", "", "built-in component name")
	specPath := fs.String("spec", "", "t-spec file to convert")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := resolveSpec(*component, *specPath)
	if err != nil {
		return err
	}
	dst, closeFn, err := outWriter(*out, w)
	if err != nil {
		return err
	}
	err = spec.SaveJSON(dst)
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

// cmdServe runs the campaign service: an HTTP/JSON API over a bounded job
// queue and worker pool, sharing one verdict store across all submissions.
// With -journal DIR submissions are write-ahead journaled and replayed on
// restart. It serves until killed; SIGTERM or SIGINT triggers a graceful
// drain (admission closed with 503 + Retry-After, in-flight jobs finished
// within -drain-timeout, journal checkpointed) before exit.
func cmdServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8437", "listen address (host:port)")
	cacheDir := fs.String("cache-dir", "", "content-addressed verdict store shared by all campaigns")
	journalDir := fs.String("journal", "", "write-ahead job journal directory (campaigns survive restarts)")
	workers := fs.Int("workers", 1, "campaigns running concurrently")
	queue := fs.Int("queue", 16, "pending-campaign queue depth (full queue returns 503)")
	parallelism := fs.Int("parallelism", 0, "per-campaign mutant workers (0 = GOMAXPROCS)")
	maxRetries := fs.Int("max-retries", 2, "retries per crashed or wedged campaign before quarantine")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline for in-flight campaigns")
	shardLease := fs.Duration("shard-lease", serve.DefaultShardLease, "per-shard worker lease for distributed campaigns")
	quiet := fs.Bool("quiet", false, "suppress per-job log lines on stderr")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceBuf := fs.Int("trace-buf", 0, "per-campaign retained trace bytes (0 = 16 MiB default, negative = unbounded)")
	accessLog := fs.String("access-log", "", "NDJSON access-log file (\"-\" = stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*cacheDir)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Store:       st,
		Workers:     *workers,
		QueueDepth:  *queue,
		Parallelism: *parallelism,
		Retry:       sandbox.RetryPolicy{Attempts: *maxRetries + 1},
		ShardLease:  *shardLease,
		TraceBuffer: *traceBuf,
		EnablePprof: *pprofFlag,
	}
	if *journalDir != "" {
		jn, err := serve.OpenJournal(*journalDir)
		if err != nil {
			return err
		}
		cfg.Journal = jn
		if cp, ok := jn.LastCheckpoint(); ok && !cp.Clean {
			fmt.Fprintf(os.Stderr, "concat serve: previous shutdown was unclean (%d active job(s)); replaying from journal\n", cp.Active)
		}
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening access log: %w", err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	// NewStarting brings the listener up immediately: /healthz and /readyz
	// answer during a long journal replay, with /readyz 503 until it ends.
	srv := serve.NewStarting(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		signal.Stop(sigs)
		fmt.Fprintf(os.Stderr, "concat serve: %s received, draining (timeout %s)\n", sig, *drainTimeout)
		srv.Drain(*drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	fmt.Fprintf(w, "concat campaign service listening on http://%s\n", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	return nil
}

// serviceURL normalizes the -addr flag of the client subcommands into a
// base URL.
func serviceURL(addr string) string {
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/")
}

// readAPIError extracts the {"error": ...} payload of a failed service
// response.
func readAPIError(resp *http.Response) error {
	var apiErr struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
		return fmt.Errorf("service: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d", resp.StatusCode)
}

// cmdSubmit posts one campaign to a running service. With -wait it blocks
// for the finished report, prints it, and applies the same exit-code
// contract as `concat mutate` (exit 2 on surviving mutants).
func cmdSubmit(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8437", "service address (host:port or URL)")
	component := fs.String("component", "", "built-in component name")
	methods := fs.String("methods", "", "comma-separated methods to mutate")
	isolate := fs.Bool("isolate", false, "run every case in a crash-contained child process")
	poolFlag := fs.Bool("pool", false, "run the campaign on the service's warm worker pool (batched crash-contained dispatch)")
	poolSize := fs.Int("pool-size", 0, "warm worker pool size for -pool (0 = service parallelism)")
	distributed := fs.Bool("distributed", false, "fan the campaign out to remote `concat work` processes")
	shards := fs.Int("shards", 0, "shard count for -distributed (0 = service default)")
	wait := fs.Bool("wait", false, "block until the campaign finishes and print its report")
	gf := addGenFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *component == "" {
		return usageError("submit needs -component")
	}
	req := serve.Request{
		Component:   *component,
		Seed:        gf.seed,
		Expand:      gf.expand,
		Alt:         gf.alt,
		LoopBound:   gf.k,
		Isolate:     *isolate,
		Pool:        *poolFlag,
		PoolSize:    *poolSize,
		Distributed: *distributed,
		Shards:      *shards,
	}
	if *methods != "" {
		for _, m := range strings.Split(*methods, ",") {
			req.Methods = append(req.Methods, strings.TrimSpace(m))
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	base := serviceURL(*addr)
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submitting to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return readAPIError(resp)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding submission response: %w", err)
	}
	fmt.Fprintf(w, "submitted %s (%s) -> %s/campaigns/%s\n", st.ID, st.Component, base, st.ID)
	if !*wait {
		return nil
	}
	// The report endpoint blocks until the job reaches a terminal state.
	repResp, err := http.Get(base + "/campaigns/" + st.ID + "/report")
	if err != nil {
		return fmt.Errorf("fetching report: %w", err)
	}
	defer repResp.Body.Close()
	if repResp.StatusCode != http.StatusOK {
		return readAPIError(repResp)
	}
	if _, err := io.Copy(w, repResp.Body); err != nil {
		return fmt.Errorf("reading report: %w", err)
	}
	final, err := fetchStatus(base, st.ID)
	if err != nil {
		return err
	}
	if final.Survivors > 0 {
		return fmt.Errorf("%d non-equivalent %w the test set", final.Survivors, errSurvivors)
	}
	return nil
}

func fetchStatus(base, id string) (serve.Status, error) {
	resp, err := http.Get(base + "/campaigns/" + id)
	if err != nil {
		return serve.Status{}, fmt.Errorf("fetching status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.Status{}, readAPIError(resp)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.Status{}, fmt.Errorf("decoding status: %w", err)
	}
	return st, nil
}

// cmdStatus prints campaign statuses from a running service — all jobs in
// submission order, or one job with -id.
func cmdStatus(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8437", "service address (host:port or URL)")
	id := fs.String("id", "", "campaign ID (default: list all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := serviceURL(*addr) + "/campaigns"
	if *id != "" {
		url += "/" + *id
	}
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("querying %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("reading response: %w", err)
	}
	return nil
}

// cmdLoadgen drives a running service with sustained concurrent load and
// prints the measurement: throughput, per-endpoint latency quantiles, the
// backpressure contract under saturation, and a series-by-series
// reconciliation of the service's /metrics request counters against the
// client's own counts. A cross-check failure or a 503 without Retry-After
// is an error exit, not just a report line.
func cmdLoadgen(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8437", "service address (host:port or URL)")
	requests := fs.Int("requests", 100, "campaign submissions to complete")
	submitters := fs.Int("submitters", 4, "concurrent submission workers")
	subscribers := fs.Int("subscribers", 2, "concurrent /events stream consumers")
	component := fs.String("component", "Account", "component each campaign mutates")
	seed := fs.Int64("seed", 42, "campaign generation seed (fixed = warm store replays)")
	jsonOut := fs.String("json", "", "write the measurement as indented JSON to FILE (- = stdout)")
	quiet := fs.Bool("quiet", false, "suppress progress lines on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := loadgen.Config{
		BaseURL:     serviceURL(*addr),
		Requests:    *requests,
		Submitters:  *submitters,
		Subscribers: *subscribers,
		Component:   *component,
		Seed:        *seed,
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "loadgen: %d campaigns (%d failed) in %.2fs — %.1f campaigns/s, %.1f requests/s over %d HTTP requests\n",
		res.CampaignsCompleted, res.CampaignsFailed, res.WallSeconds,
		res.CampaignsPerSecond, res.RequestsPerSecond, res.HTTPRequests)
	eps := make([]string, 0, len(res.Endpoints))
	for ep := range res.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		st := res.Endpoints[ep]
		fmt.Fprintf(w, "  %-28s %6d reqs  p50 %s  p95 %s  p99 %s\n", ep, st.Requests,
			time.Duration(st.P50US)*time.Microsecond,
			time.Duration(st.P95US)*time.Microsecond,
			time.Duration(st.P99US)*time.Microsecond)
	}
	fmt.Fprintf(w, "  backpressure: %d submissions rejected 503 (%d without Retry-After)\n",
		res.Backpressure.Rejected503, res.Backpressure.MissingRetryAfter)
	fmt.Fprintf(w, "  cross-check: %d series, agree=%v\n", res.CrossCheck.Series, res.CrossCheck.Agree)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			_, err = w.Write(data)
		} else {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	if !res.CrossCheck.Agree {
		return fmt.Errorf("loadgen: server/client counter mismatch:\n  %s",
			strings.Join(res.CrossCheck.Mismatches, "\n  "))
	}
	if res.Backpressure.MissingRetryAfter > 0 {
		return fmt.Errorf("loadgen: %d 503 responses lacked Retry-After", res.Backpressure.MissingRetryAfter)
	}
	if res.CampaignsFailed > 0 {
		return fmt.Errorf("loadgen: %d campaigns did not complete", res.CampaignsFailed)
	}
	return nil
}

// cmdWork runs a remote campaign worker: it polls the coordinator for
// shard leases, executes each shard with the same machinery the service's
// local path uses, and publishes every verdict into the shared store —
// by default the coordinator's own /store mount, or with -store-dir a
// filesystem store on a shared volume. SIGTERM or SIGINT stops the
// polling loop; -idle-exit lets CI workers drain and exit on their own.
func cmdWork(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "127.0.0.1:8437", "coordinator address (host:port or URL)")
	storeDir := fs.String("store-dir", "", "shared filesystem verdict store (default: the coordinator's /store mount)")
	parallelism := fs.Int("parallelism", 0, "per-shard mutant workers (0 = GOMAXPROCS)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle delay between lease polls")
	idleExit := fs.Duration("idle-exit", 0, "exit after this long without work (0 = run until killed)")
	quiet := fs.Bool("quiet", false, "suppress per-shard log lines on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := serviceURL(*coordinator)
	var backend store.Backend
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		backend = st
	} else {
		backend = store.NewRemote(base, nil)
	}
	cfg := serve.WorkerConfig{
		Coordinator: base,
		Store:       backend,
		Parallelism: *parallelism,
		Poll:        *poll,
		IdleExit:    *idleExit,
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "concat work: %s received, stopping\n", sig)
		cancel()
	}()
	fmt.Fprintf(w, "concat worker polling %s\n", base)
	n := serve.NewWorker(cfg).Run(ctx)
	fmt.Fprintf(w, "concat work: %d shard(s) completed\n", n)
	return nil
}

func printReport(w io.Writer, rep *testexec.Report) {
	fmt.Fprintln(w, rep.Summary())
	for _, f := range rep.Failures() {
		fmt.Fprintf(w, "  FAIL %s (%s): %s — %s\n", f.CaseID, f.Transaction, f.Outcome, f.Detail)
	}
}
