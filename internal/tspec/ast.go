// Package tspec implements the test specification (t-spec) language of the
// paper's Figure 3. A t-spec is the machine-readable specification a
// producer embeds in a self-testable component: it describes the component's
// interface (class, attributes with value domains, method signatures with
// parameter domains) and its transaction flow model (nodes and edges). The
// consumer-side Driver Generator consumes a t-spec to generate test cases.
//
// The package provides a lexer/parser for the textual notation, a validator,
// a serializer that round-trips specs, a programmatic builder, the lowering
// of a spec onto a tfm.Graph, and the spec diffing that drives hierarchical
// incremental test reuse (§3.4.2).
package tspec

import (
	"fmt"
	"sync"

	"concat/internal/domain"
	"concat/internal/tfm"
)

// Spec is a parsed t-spec.
type Spec struct {
	Class      Class
	Attributes []Attribute
	Methods    []Method
	Nodes      []NodeDecl
	Edges      []EdgeDecl

	// Redefined lists inherited methods whose implementation the subclass
	// replaced without changing their specification (the only kind of
	// redefinition Harrold's model — and therefore the paper — permits:
	// "modifications to an inherited method cannot alter its signature").
	// Meaningful only when Class.Superclass is set.
	Redefined []string
	// ModifiedAttributes lists attributes whose representation changed in
	// the subclass; every method that Uses one of them is treated as
	// modified (§3.4.2: "In case an attribute is modified, the methods using
	// it are considered as modified").
	ModifiedAttributes []string

	// canonOnce memoizes CanonicalHash. A spec must not be mutated after
	// its first CanonicalHash call; Clone returns a copy with a fresh memo.
	canonOnce sync.Once
	canonHash string
	canonErr  error
}

// Class is the component-level header clause.
type Class struct {
	Name       string
	Abstract   bool
	Superclass string   // empty when the class has no parent
	Sources    []string // source files needed to compile the class (informational)
}

// Attribute declares a component attribute and its value domain. Attributes
// are not part of the public interface (§3.4.2 constraint); their domains
// feed invariant checking and the reporter.
type Attribute struct {
	Name   string
	Domain DomainDecl
}

// MethodCategory is the "method category relative to test reuse" field of
// the Method clause.
type MethodCategory int

// Method categories.
const (
	CatConstructor MethodCategory = iota + 1
	CatDestructor
	CatUpdate // mutates object state
	CatAccess // read-only observer
	CatOther
)

var categoryNames = map[MethodCategory]string{
	CatConstructor: "constructor",
	CatDestructor:  "destructor",
	CatUpdate:      "update",
	CatAccess:      "access",
	CatOther:       "other",
}

// String returns the t-spec keyword for the category.
func (c MethodCategory) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// ParseCategory converts a t-spec keyword to a MethodCategory.
func ParseCategory(s string) (MethodCategory, error) {
	for c, name := range categoryNames {
		if name == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("tspec: unknown method category %q", s)
}

// Method declares one method of the component.
type Method struct {
	ID       string // identifier used by Node and Parameter clauses (m1, ...)
	Name     string
	Return   string // return type name; empty for none (the paper's <empty>)
	Category MethodCategory
	Params   []Param  // filled by Parameter clauses, in declaration order
	Uses     []string // attributes the method reads or writes (optional)

	// DeclaredParams is the parameter count announced in the Method clause;
	// the validator checks it against the Parameter clauses seen.
	DeclaredParams int
}

// Param is one declared parameter with its value domain.
type Param struct {
	Name   string
	Domain DomainDecl
}

// NodeDecl is a Node clause: a TFM node grouping alternative methods.
type NodeDecl struct {
	ID      string
	Start   bool
	OutDeg  int // declared number of outgoing edges, validated against Edge clauses
	Methods []string
}

// EdgeDecl is an Edge clause.
type EdgeDecl struct {
	From, To string
}

// DomainKind distinguishes the declared domain forms of the t-spec notation.
type DomainKind int

// Declared domain forms ("allowable types: range, set, string, object,
// pointer" per Figure 3, plus bool).
const (
	DomRange  DomainKind = iota + 1 // integer or float range
	DomSet                          // explicit value enumeration
	DomString                       // random string or candidate list
	DomObject
	DomPointer
	DomBool
)

var domainKindNames = map[DomainKind]string{
	DomRange:   "range",
	DomSet:     "set",
	DomString:  "string",
	DomObject:  "object",
	DomPointer: "pointer",
	DomBool:    "bool",
}

// String returns the t-spec keyword.
func (k DomainKind) String() string {
	if s, ok := domainKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("domainKind(%d)", int(k))
}

// ParseDomainKind converts a keyword to a DomainKind.
func ParseDomainKind(s string) (DomainKind, error) {
	for k, name := range domainKindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("tspec: unknown domain type %q", s)
}

// DomainDecl is the declarative form of a value domain as written in a
// t-spec. Build lowers it onto a runtime domain.Domain.
type DomainDecl struct {
	Kind DomainKind

	// Range form. Float is true when either limit was written with a
	// decimal point; the built domain is then a FloatRange.
	Lo, Hi float64
	Float  bool

	// Set form.
	Members []domain.Value

	// String form: either explicit candidates or length bounds.
	Candidates     []string
	MinLen, MaxLen int

	// Object / pointer form.
	TypeName string
	Nullable bool
}

// Build lowers the declaration onto an executable domain. Object and
// pointer domains are built without providers; the driver attaches providers
// at generation time (the "manual completion" hook).
func (d DomainDecl) Build() (domain.Domain, error) {
	switch d.Kind {
	case DomRange:
		if d.Float {
			return domain.NewFloatRange(d.Lo, d.Hi)
		}
		return domain.NewIntRange(int64(d.Lo), int64(d.Hi))
	case DomSet:
		return domain.NewSet(d.Members...)
	case DomString:
		if len(d.Candidates) > 0 {
			return domain.NewStringSet(d.Candidates...)
		}
		return domain.NewStringDomain(d.MinLen, d.MaxLen, "")
	case DomObject:
		return domain.ObjectDomain{TypeName: d.TypeName}, nil
	case DomPointer:
		return domain.PointerDomain{TypeName: d.TypeName, Nullable: d.Nullable}, nil
	case DomBool:
		return domain.BoolDomain{}, nil
	default:
		return nil, fmt.Errorf("tspec: cannot build domain of kind %v", d.Kind)
	}
}

// MethodByID returns the method with the given identifier.
func (s *Spec) MethodByID(id string) (Method, bool) {
	for _, m := range s.Methods {
		if m.ID == id {
			return m, true
		}
	}
	return Method{}, false
}

// MethodByName returns the first method with the given name.
func (s *Spec) MethodByName(name string) (Method, bool) {
	for _, m := range s.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return Method{}, false
}

// AttributeByName returns the attribute with the given name.
func (s *Spec) AttributeByName(name string) (Attribute, bool) {
	for _, a := range s.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// NodeByID returns the node declaration with the given identifier.
func (s *Spec) NodeByID(id string) (NodeDecl, bool) {
	for _, n := range s.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeDecl{}, false
}

// IsFinalNode reports whether a node is a death node: every method it lists
// is a destructor. The paper's notation has no explicit final flag — death
// is destruction — so finality is inferred from method categories.
func (s *Spec) IsFinalNode(n NodeDecl) bool {
	if len(n.Methods) == 0 {
		return false
	}
	for _, id := range n.Methods {
		m, ok := s.MethodByID(id)
		if !ok || m.Category != CatDestructor {
			return false
		}
	}
	return true
}

// TFM lowers the spec's Node and Edge clauses onto a transaction flow
// model graph.
func (s *Spec) TFM() (*tfm.Graph, error) {
	g := tfm.New(s.Class.Name)
	for _, n := range s.Nodes {
		node := tfm.Node{
			ID:      tfm.NodeID(n.ID),
			Methods: append([]string(nil), n.Methods...),
			Start:   n.Start,
			Final:   s.IsFinalNode(n),
		}
		if err := g.AddNode(node); err != nil {
			return nil, fmt.Errorf("lowering spec %q: %w", s.Class.Name, err)
		}
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(tfm.NodeID(e.From), tfm.NodeID(e.To)); err != nil {
			return nil, fmt.Errorf("lowering spec %q: %w", s.Class.Name, err)
		}
	}
	return g, nil
}

// Clone returns a deep copy of the spec. The copy's CanonicalHash memo is
// fresh, so a clone may be mutated freely before it is first hashed.
func (s *Spec) Clone() *Spec {
	cp := Spec{Class: s.Class}
	cp.Class.Sources = append([]string(nil), s.Class.Sources...)
	cp.Attributes = make([]Attribute, len(s.Attributes))
	for i, a := range s.Attributes {
		cp.Attributes[i] = a
		cp.Attributes[i].Domain = a.Domain.clone()
	}
	cp.Methods = make([]Method, len(s.Methods))
	for i, m := range s.Methods {
		cp.Methods[i] = m
		cp.Methods[i].Params = make([]Param, len(m.Params))
		for j, p := range m.Params {
			cp.Methods[i].Params[j] = p
			cp.Methods[i].Params[j].Domain = p.Domain.clone()
		}
		cp.Methods[i].Uses = append([]string(nil), m.Uses...)
	}
	cp.Nodes = make([]NodeDecl, len(s.Nodes))
	for i, n := range s.Nodes {
		cp.Nodes[i] = n
		cp.Nodes[i].Methods = append([]string(nil), n.Methods...)
	}
	cp.Edges = append([]EdgeDecl(nil), s.Edges...)
	cp.Redefined = append([]string(nil), s.Redefined...)
	cp.ModifiedAttributes = append([]string(nil), s.ModifiedAttributes...)
	return &cp
}

func (d DomainDecl) clone() DomainDecl {
	cp := d
	cp.Members = append([]domain.Value(nil), d.Members...)
	cp.Candidates = append([]string(nil), d.Candidates...)
	return cp
}
