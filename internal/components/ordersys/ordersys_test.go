package ordersys

import (
	"errors"
	"strings"
	"testing"

	"concat/internal/analysis"
	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/testexec"
)

func newSystem(t *testing.T) component.Instance {
	t.Helper()
	inst, err := NewFactory().New("OrderSystem", nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	return inst
}

func stock(t *testing.T, inst component.Instance, name string, qty int64, price float64) {
	t.Helper()
	_, err := inst.Invoke("Stock.AddProduct", []domain.Value{
		domain.Str(name), domain.Int(qty), domain.Float(price),
	})
	if err != nil {
		t.Fatalf("stocking %s: %v", name, err)
	}
}

func TestSpecIsValidInterclassModel(t *testing.T) {
	s := Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	// The model sequences two classes: Stock.* and Cart.* methods coexist.
	sawStock, sawCart := false, false
	for _, m := range s.Methods {
		if strings.HasPrefix(m.Name, "Stock.") {
			sawStock = true
		}
		if strings.HasPrefix(m.Name, "Cart.") {
			sawCart = true
		}
	}
	if !sawStock || !sawCart {
		t.Error("interclass model should span both classes")
	}
}

func TestOrderLifecycle(t *testing.T) {
	inst := newSystem(t)
	stock(t, inst, "widget", 10, 2.5)
	stock(t, inst, "gadget", 5, 10)

	out, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("widget"), domain.Int(4)})
	if err != nil || out[0].MustInt() != 1 {
		t.Fatalf("AddLine = %v, %v", out, err)
	}
	if _, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("gadget"), domain.Int(2)}); err != nil {
		t.Fatal(err)
	}
	out, err = inst.Invoke("Cart.Total", nil)
	if err != nil {
		t.Fatal(err)
	}
	if total, _ := out[0].AsFloat(); total != 4*2.5+2*10 {
		t.Errorf("total = %v", out[0])
	}
	if err := inst.InvariantTest(); err != nil {
		t.Fatalf("invariant before checkout: %v", err)
	}

	out, err = inst.Invoke("Checkout", nil)
	if err != nil || out[0].MustInt() != 6 {
		t.Fatalf("Checkout = %v, %v", out, err)
	}
	out, err = inst.Invoke("Cart.Lines", nil)
	if err != nil || out[0].MustInt() != 0 {
		t.Errorf("lines after checkout = %v", out)
	}
	// Stock decremented across the class boundary.
	var dump strings.Builder
	if err := inst.Reporter(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "checkouts: 1") {
		t.Errorf("report = %q", dump.String())
	}
	if err := inst.InvariantTest(); err != nil {
		t.Fatalf("invariant after checkout: %v", err)
	}
}

func TestCartAddLineAccumulates(t *testing.T) {
	inst := newSystem(t)
	stock(t, inst, "widget", 10, 1)
	for i := 0; i < 2; i++ {
		if _, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("widget"), domain.Int(3)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := inst.Invoke("Cart.Lines", nil)
	if err != nil || out[0].MustInt() != 1 {
		t.Errorf("lines = %v (accumulating line should not duplicate)", out)
	}
	out, _ = inst.Invoke("Cart.Total", nil)
	if total, _ := out[0].AsFloat(); total != 6 {
		t.Errorf("total = %v", total)
	}
}

func TestObservableErrors(t *testing.T) {
	inst := newSystem(t)
	stock(t, inst, "widget", 3, 1)
	// Ordering the unstocked.
	if _, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("gizmo"), domain.Int(1)}); err == nil {
		t.Error("unstocked order should fail")
	}
	// Over-ordering.
	if _, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("widget"), domain.Int(5)}); !errors.Is(err, ErrInsufficientStock) {
		t.Errorf("over-order err = %v", err)
	}
	// Removing an absent line.
	if _, err := inst.Invoke("Cart.RemoveLine", []domain.Value{domain.Str("widget")}); !errors.Is(err, ErrNoSuchLine) {
		t.Errorf("remove absent err = %v", err)
	}
	// Checkout of an empty cart.
	if _, err := inst.Invoke("Checkout", nil); err == nil {
		t.Error("empty checkout should fail")
	}
	// Duplicate stocking.
	_, err := inst.Invoke("Stock.AddProduct", []domain.Value{domain.Str("widget"), domain.Int(1), domain.Float(1)})
	if err == nil {
		t.Error("duplicate stocking should fail")
	}
	// Preconditions.
	_, err = inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("widget"), domain.Int(0)})
	if !errors.Is(err, &bit.Violation{Kind: bit.KindPrecondition}) {
		t.Errorf("zero qty err = %v", err)
	}
	_, err = inst.Invoke("Stock.AddProduct", []domain.Value{domain.Str("x"), domain.Int(1), domain.Float(0)})
	if !errors.Is(err, &bit.Violation{Kind: bit.KindPrecondition}) {
		t.Errorf("zero price err = %v", err)
	}
}

func TestStockRemoveKeepsInvariant(t *testing.T) {
	inst := newSystem(t)
	stock(t, inst, "widget", 5, 1)
	if _, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("widget"), domain.Int(2)}); err != nil {
		t.Fatal(err)
	}
	// Delisting the product drops the cart line first: the interclass
	// invariant must hold afterwards.
	if _, err := inst.Invoke("Stock.Remove", []domain.Value{domain.Str("widget")}); err != nil {
		t.Fatal(err)
	}
	if err := inst.InvariantTest(); err != nil {
		t.Fatalf("invariant after delisting: %v", err)
	}
	out, _ := inst.Invoke("Cart.Lines", nil)
	if out[0].MustInt() != 0 {
		t.Error("cart line should be dropped with its product")
	}
}

func TestDestroy(t *testing.T) {
	inst := newSystem(t)
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("Cart.Lines", nil); !errors.Is(err, component.ErrDestroyed) {
		t.Errorf("post-destroy err = %v", err)
	}
}

func TestFactoryValidation(t *testing.T) {
	f := NewFactory()
	if f.Name() != Name {
		t.Errorf("Name = %q", f.Name())
	}
	if _, err := f.New("Nope", nil); err == nil {
		t.Error("unknown ctor should fail")
	}
	if _, err := f.New("OrderSystem", []domain.Value{domain.Int(1)}); err == nil {
		t.Error("ctor with args should fail")
	}
}

func TestGeneratedSuiteRunsClean(t *testing.T) {
	suite, err := driver.Generate(Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Cases) == 0 {
		t.Fatal("no cases")
	}
	rep, err := testexec.Run(suite, NewFactory(), testexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("failures: %+v", rep.Failures()[:1])
	}
}

func TestInterclassMutationAnalysis(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	suite, err := driver.Generate(Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := &analysis.Analysis{
		Engine:  eng,
		Factory: NewFactoryWithEngine(eng),
		Suite:   suite,
	}
	res, err := a.Run(eng.Enumerate(nil, []string{"Checkout"}))
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tabulate()
	if table.Total.Mutants == 0 {
		t.Fatal("no interclass mutants")
	}
	if table.Total.Killed == 0 {
		t.Error("the suite should kill interclass mutants (stock corruption is observable)")
	}
	score := table.Total.Score()
	if score < 0.5 {
		t.Errorf("interclass mutation score = %.1f%%, suspiciously low", score*100)
	}
}

func TestMutatedCheckoutBreaksInterclassInvariant(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	// Checkout/remaining replaced by the line qty: stock keeps the wrong
	// amount after checkout.
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpRepLoc}, nil) {
		if m.Site == "Checkout/remaining" && m.Replacement == "qty" {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("target mutant not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	f := NewFactoryWithEngine(eng)
	inst, err := f.New("OrderSystem", nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	if _, err := inst.Invoke("Stock.AddProduct", []domain.Value{domain.Str("widget"), domain.Int(5), domain.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("Cart.AddLine", []domain.Value{domain.Str("widget"), domain.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("Checkout", nil); err != nil {
		t.Fatalf("mutated checkout errored early: %v", err)
	}
	// Stock should hold 3 but the mutant wrote 2: observable via reporter.
	var dump strings.Builder
	if err := inst.Reporter(&dump); err != nil {
		t.Fatal(err)
	}
	if !eng.Infected() {
		t.Error("mutant should have infected the interclass state")
	}
}
