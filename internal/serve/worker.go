// Distributed campaigns, worker side: the engine behind `concat work`. A
// Worker polls its coordinator for shard leases, executes each shard with
// the exact campaign machinery the coordinator's local path uses — same
// suite generation, same execution options, so its verdict-store keys
// match the coordinator's byte for byte — publishes every verdict into the
// shared store as it runs, and reports completion with the lease's epoch
// token. Workers are stateless and interchangeable: any number can serve
// one coordinator, join late, or die mid-shard (the lease reclaims it).

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"concat/internal/core"
	"concat/internal/store"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8437").
	Coordinator string
	// Store is the shared verdict store the worker publishes into —
	// typically store.NewRemote over the coordinator's own /store mount,
	// or a filesystem store on a shared volume. Must be enabled: a worker
	// whose verdicts go nowhere would make the coordinator's merge re-run
	// everything.
	Store store.Backend
	// Parallelism is the per-shard mutant-worker count (0 = GOMAXPROCS).
	Parallelism int
	// Poll is the idle delay between lease requests (default 500ms).
	Poll time.Duration
	// IdleExit, when positive, makes Run return after this long without
	// obtaining a lease — lets batch jobs and CI drain and exit. Zero runs
	// until the context is cancelled.
	IdleExit time.Duration
	// Client is the HTTP client for coordinator calls (nil = default).
	Client *http.Client
	// Logf, when non-nil, receives one line per shard and per error.
	Logf func(format string, args ...any)
}

// Worker pulls and executes campaign shards until stopped.
type Worker struct {
	cfg WorkerConfig
}

// NewWorker returns a worker over cfg.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	return &Worker{cfg: cfg}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run polls the coordinator for shard leases and executes them, returning
// the number of shards completed successfully. It returns when ctx is
// cancelled or, with IdleExit set, after going that long without work —
// an unreachable coordinator counts as idle, so a worker that outlives its
// coordinator drains instead of spinning forever.
func (w *Worker) Run(ctx context.Context) int {
	if !store.Enabled(w.cfg.Store) {
		w.logf("work: no verdict store configured; refusing to run")
		return 0
	}
	completed := 0
	idleSince := time.Now()
	for {
		if ctx.Err() != nil {
			return completed
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			w.logf("work: lease: %v", err)
		}
		if !ok {
			if w.cfg.IdleExit > 0 && time.Since(idleSince) >= w.cfg.IdleExit {
				w.logf("work: idle for %s; exiting", w.cfg.IdleExit)
				return completed
			}
			select {
			case <-ctx.Done():
				return completed
			case <-time.After(w.cfg.Poll):
			}
			continue
		}
		idleSince = time.Now()
		w.logf("work: leased %s shard %d/%d (%s)", lease.Job, lease.Shard, lease.Shards, lease.Req.Component)
		runErr := RunShard(lease.Req, lease.Shard, lease.Shards, w.cfg.Parallelism, w.cfg.Store)
		if runErr != nil {
			w.logf("work: %s shard %d failed: %v", lease.Job, lease.Shard, runErr)
		} else {
			completed++
			w.logf("work: %s shard %d done", lease.Job, lease.Shard)
		}
		if err := w.complete(ctx, lease, runErr); err != nil {
			w.logf("work: reporting %s shard %d: %v", lease.Job, lease.Shard, err)
		}
	}
}

// lease asks the coordinator for one shard; ok=false means no work.
func (w *Worker) lease(ctx context.Context) (ShardLease, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+"/work/lease", nil)
	if err != nil {
		return ShardLease{}, false, err
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return ShardLease{}, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return ShardLease{}, false, nil
	case http.StatusOK:
		var lease ShardLease
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&lease); err != nil {
			return ShardLease{}, false, fmt.Errorf("decoding lease: %w", err)
		}
		if lease.Shards < 1 || lease.Shard < 0 || lease.Shard >= lease.Shards {
			return ShardLease{}, false, fmt.Errorf("coordinator sent invalid lease: shard %d of %d", lease.Shard, lease.Shards)
		}
		return lease, true, nil
	default:
		return ShardLease{}, false, fmt.Errorf("lease request: HTTP %d", resp.StatusCode)
	}
}

// complete reports a shard's outcome under its epoch token. A 409 means
// the lease was reclaimed while we worked — the verdicts are already in
// the shared store, so losing the race costs nothing.
func (w *Worker) complete(ctx context.Context, lease ShardLease, runErr error) error {
	d := ShardDone{Epoch: lease.Epoch}
	if runErr != nil {
		d.Error = runErr.Error()
	}
	body, err := json.Marshal(d)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/work/%s/shards/%d", w.cfg.Coordinator, lease.Job, lease.Shard)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode/100 == 2:
		return nil
	case resp.StatusCode == http.StatusConflict:
		w.logf("work: %s shard %d lease was reclaimed before completion landed", lease.Job, lease.Shard)
		return nil
	default:
		return fmt.Errorf("completion POST: HTTP %d", resp.StatusCode)
	}
}

// RunShard executes one shard of a distributed campaign: the mutants of
// req whose enumeration index is congruent to shard mod shards, publishing
// every verdict into backend. The suite and execution options derive from
// req exactly as the coordinator's local path derives them, so the cache
// keys match and the coordinator's merge replays these verdicts as hits.
func RunShard(req Request, shard, shards, parallelism int, backend store.Backend) error {
	if shards < 1 || shard < 0 || shard >= shards {
		return fmt.Errorf("serve: shard %d out of range for %d shards", shard, shards)
	}
	if !store.Enabled(backend) {
		return fmt.Errorf("serve: shard execution requires a verdict store")
	}
	t, err := core.LookupTarget(req.Component)
	if err != nil {
		return err
	}
	suite, err := t.New(nil).GenerateSuite(req.genOptions())
	if err != nil {
		return err
	}
	_, err = core.MutationRunOpts(req.Component, suite, req.Methods, nil, core.MutationOptions{
		Exec:        req.execOptions(),
		Parallelism: parallelism,
		Store:       backend,
		ShardIndex:  shard,
		ShardCount:  shards,
	})
	return err
}
