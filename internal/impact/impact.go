// Package impact is the test-impact analysis engine: given two revisions of
// a component's t-spec, it computes exactly which test cases the edit
// invalidates, re-executes only those, and replays everything else from the
// content-addressed verdict store — producing a final report and coverage
// artifact byte-identical to a cold full run on the new spec.
//
// The partition has three classes, decided per case of the new spec's
// generated suite:
//
//   - kept: the case exists byte-identically in the old suite and exercises
//     no impacted method — its cached result replays warm (a miss executes
//     and backfills the store);
//   - rerun: the case is byte-identical too, but one of its methods is in
//     the impact set (redefined implementation, changed domain, modified
//     attribute) — recorded behavior can no longer be trusted, so it
//     executes fresh even when a cached entry exists;
//   - regenerated: the case's content differs from the old suite (or has no
//     old counterpart): changed domains resampled its arguments or the TFM
//     edit moved its transaction — it executes fresh.
//
// Because the driver seeds each transaction's RNG stream independently
// (driver.Generate), an edit localized to one method perturbs only the
// transactions that exercise it; everything else stays byte-identical and
// replays warm. Per-case results are stored under store.KindCaseResult keys
// addressed by the case's own canonical hash, so reuse survives arbitrary
// spec edits — unlike whole-suite report keys, which any edit moves.
package impact

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/core/canon"
	"concat/internal/cover"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

// Decision classifies one case of the new suite.
type Decision string

// Case decisions.
const (
	DecisionKept        Decision = "kept"
	DecisionRerun       Decision = "rerun"
	DecisionRegenerated Decision = "regenerated"
)

// caseEntry is the stored form of one case's execution: the per-case slice
// of a testexec.Report. Sites and Abandoned carry the case's contribution to
// the report-level BIT telemetry and goroutine-leak count, so a report
// reassembled from entries is byte-identical to one produced by a full run.
type caseEntry struct {
	Result    testexec.CaseResult `json:"result"`
	Sites     []bit.SiteRecord    `json:"sites,omitempty"`
	Abandoned int                 `json:"abandoned,omitempty"`
}

// Runner configures impact-driven re-runs of one component.
type Runner struct {
	// Factory builds the component under test; its Name must match the new
	// spec's class.
	Factory component.Factory
	// Providers complete structured-parameter holes (object/pointer domains).
	Providers map[string]domain.Provider
	// Gen configures suite generation; the same options are applied to the
	// old and new specs so the diff compares like with like.
	Gen driver.Options
	// Exec configures execution of invalidated cases. The runner executes
	// each case as its own single-case run (results are position-independent
	// by the CaseSeed contract), so Parallelism here only affects the inner
	// runs; use Runner.Parallelism to fan cases out. LogWriter and
	// LeakLedger are ignored — per-case logs would interleave and a shared
	// ledger's delta windows would race.
	Exec testexec.Options
	// Store is the verdict store backing warm replay; disabled (nil) makes
	// every case execute. An Oracle in Exec also disables replay, mirroring
	// core.RunSuiteCached.
	Store store.Backend
	// Parallelism bounds concurrent case executions; <=0 uses GOMAXPROCS.
	Parallelism int
	// MutantMethods is the method name of every mutant enumerable for the
	// component (one entry per mutant, duplicates expected). Used only for
	// accounting: mutants of impacted methods are reported invalidated.
	MutantMethods []string
}

// Result is everything an impact run produces.
type Result struct {
	// Report is the impact artifact: the partition and its attribution.
	Report *Report
	// Final is the reassembled suite report, byte-identical to a cold
	// testexec.Run of Suite on the new spec.
	Final *testexec.Report
	// Coverage is the coverage artifact of the final report against the new
	// spec's TFM, byte-identical to a cold run's.
	Coverage *cover.Artifact
	// Suite is the suite generated from the new spec.
	Suite *driver.Suite
}

// Run diffs the two spec revisions, partitions the new suite, executes the
// invalidated part and replays the rest warm. Per-case failures are recorded
// in the final report as usual; Run fails only on harness-level errors
// (invalid specs, factory mismatch, store write failures).
func (r *Runner) Run(oldSpec, newSpec *tspec.Spec) (*Result, error) {
	if r.Factory == nil {
		return nil, errors.New("impact: nil factory")
	}
	if newSpec.Class.Name != r.Factory.Name() {
		return nil, fmt.Errorf("impact: new spec is for %q but factory builds %q",
			newSpec.Class.Name, r.Factory.Name())
	}
	oldSuite, err := driver.Generate(oldSpec, r.Gen)
	if err != nil {
		return nil, fmt.Errorf("impact: generating old suite: %w", err)
	}
	newSuite, err := driver.Generate(newSpec, r.Gen)
	if err != nil {
		return nil, fmt.Errorf("impact: generating new suite: %w", err)
	}
	delta := tspec.DiffSpecs(oldSpec, newSpec)
	impacted := delta.ImpactedSet()

	exec := r.Exec
	if exec.Providers == nil {
		exec.Providers = r.Providers
	}
	exec.LogWriter = nil
	exec.LeakLedger = nil
	cacheable := store.Enabled(r.Store) && exec.Oracle == nil
	fp, err := exec.ResultFingerprint()
	if err != nil {
		return nil, fmt.Errorf("impact: fingerprinting options: %w", err)
	}

	oldHash, err := oldSpec.CanonicalHash()
	if err != nil {
		return nil, fmt.Errorf("impact: hashing old spec: %w", err)
	}
	newHash, err := newSpec.CanonicalHash()
	if err != nil {
		return nil, fmt.Errorf("impact: hashing new spec: %w", err)
	}

	// Classify every case of the new suite and replay what we can.
	tasks := make([]task, len(newSuite.Cases))
	hits := 0
	for i, tc := range newSuite.Cases {
		caseHash, err := canon.Hash(tc)
		if err != nil {
			return nil, fmt.Errorf("impact: hashing case %s: %w", tc.ID, err)
		}
		t := &tasks[i]
		t.tc = tc
		t.key = store.Key{
			Kind:    store.KindCaseResult,
			Spec:    newSuite.Component,
			Suite:   caseHash,
			Seed:    exec.Seed,
			Options: fp,
		}
		t.info = CaseImpact{CaseID: tc.ID, Transaction: tc.Transaction}

		oldTC, inOld := oldSuite.CaseByID(tc.ID)
		sameBytes := false
		if inOld {
			h, err := canon.Hash(oldTC)
			if err != nil {
				return nil, fmt.Errorf("impact: hashing old case %s: %w", tc.ID, err)
			}
			sameBytes = h == caseHash
		}
		switch {
		case sameBytes && !touchesImpacted(tc, impacted):
			t.info.Decision = DecisionKept
			if cacheable {
				// A lookup error (corrupt entry) is a miss; the Put after
				// execution repairs it.
				if hit, _ := r.Store.Get(t.key, &t.entry); hit {
					t.info.Warm = true
					hits++
					continue
				}
			}
			t.info.Reason = "cold store"
			t.run = true
		case sameBytes:
			t.info.Decision = DecisionRerun
			t.info.Reason = impactReason(tc, impacted, delta)
			t.run = true
		default:
			t.info.Decision = DecisionRegenerated
			t.info.Reason = regenerationReason(tc, inOld, impacted, delta)
			t.run = true
		}
	}

	// Execute the invalidated partition. Each case runs as its own suite —
	// by the CaseSeed contract its result is identical to the same case
	// inside a full run — fanned over a bounded worker pool. Under pool
	// isolation one warm worker pool is shared across all runs.
	if exec.Isolation == testexec.IsolatePool && exec.WorkerPool == nil {
		size := exec.PoolSize
		if size <= 0 {
			size = r.parallelism()
		}
		p, err := testexec.NewWorkerPool(exec, size)
		if err != nil {
			return nil, fmt.Errorf("impact: provisioning worker pool: %w", err)
		}
		exec.WorkerPool = p
		defer p.Close()
	}
	var pending []int
	for i := range tasks {
		if tasks[i].run {
			pending = append(pending, i)
		}
	}
	if err := r.execute(newSuite, tasks, pending, exec, cacheable); err != nil {
		return nil, err
	}

	// Reassemble the final report in suite order: results concatenate,
	// per-case BIT telemetry merges (order-insensitive, like a full run's
	// per-case merge), abandonment counts sum.
	final := &testexec.Report{Component: newSuite.Component}
	tel := bit.NewTelemetry()
	for i := range tasks {
		final.Results = append(final.Results, tasks[i].entry.Result)
		tel.MergeRecords(tasks[i].entry.Sites)
		final.AbandonedGoroutines += tasks[i].entry.Abandoned
	}
	final.BITSites = tel.Records()

	g, err := newSpec.TFM()
	if err != nil {
		return nil, fmt.Errorf("impact: lowering new spec: %w", err)
	}
	art, err := cover.FromRun(g, newSuite, final)
	if err != nil {
		return nil, fmt.Errorf("impact: computing coverage: %w", err)
	}

	rep := &Report{
		Version:     Version,
		Component:   newSuite.Component,
		Seed:        newSuite.Seed,
		OldSpecHash: oldHash,
		NewSpecHash: newHash,
		Delta:       delta,
		CacheHits:   hits,
		CacheMisses: len(pending),
	}
	for i := range tasks {
		rep.Cases = append(rep.Cases, tasks[i].info)
		switch tasks[i].info.Decision {
		case DecisionKept:
			rep.Kept++
		case DecisionRerun:
			rep.Rerun++
		case DecisionRegenerated:
			rep.Regenerated++
		}
	}
	rep.Transactions = transactionImpacts(rep.Cases)
	for _, m := range r.MutantMethods {
		if impacted[m] {
			rep.MutantsInvalidated++
		} else {
			rep.MutantsKept++
		}
	}
	return &Result{Report: rep, Final: final, Coverage: art, Suite: newSuite}, nil
}

func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// execute runs the pending cases concurrently and fills their entries,
// recording each fresh result in the store.
func (r *Runner) execute(suite *driver.Suite, tasks []task, pending []int, exec testexec.Options, cacheable bool) error {
	workers := r.parallelism()
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(pending) {
					mu.Unlock()
					return
				}
				idx := pending[next]
				next++
				mu.Unlock()

				t := &tasks[idx]
				one := &driver.Suite{
					Component: suite.Component,
					Seed:      suite.Seed,
					Criterion: suite.Criterion,
					Cases:     []driver.TestCase{t.tc},
				}
				rep, err := testexec.Run(one, r.Factory, exec)
				if err == nil && len(rep.Results) != 1 {
					err = fmt.Errorf("impact: case %s produced %d results", t.tc.ID, len(rep.Results))
				}
				if err == nil {
					t.entry = caseEntry{
						Result:    rep.Results[0],
						Sites:     rep.BITSites,
						Abandoned: rep.AbandonedGoroutines,
					}
					if cacheable {
						err = r.Store.Put(t.key, t.entry)
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// task is one case of the new suite moving through classification,
// execution/replay and reassembly.
type task struct {
	tc    driver.TestCase
	key   store.Key
	entry caseEntry
	info  CaseImpact
	run   bool // needs execution
}

// touchesImpacted reports whether any of the case's methods is impacted.
func touchesImpacted(tc driver.TestCase, impacted map[string]bool) bool {
	for _, m := range tc.Methods() {
		if impacted[m] {
			return true
		}
	}
	return false
}

// impactReason attributes a rerun decision: the impacted methods the case
// exercises, each with the delta's recorded reason.
func impactReason(tc driver.TestCase, impacted map[string]bool, delta tspec.SpecDelta) string {
	var parts []string
	for _, m := range tc.Methods() {
		if impacted[m] {
			parts = append(parts, m+" "+delta.ImpactedReason(m))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// regenerationReason attributes a regenerated decision.
func regenerationReason(tc driver.TestCase, inOld bool, impacted map[string]bool, delta tspec.SpecDelta) string {
	if !inOld {
		if delta.ModelChanged {
			return "no old counterpart (model changed)"
		}
		return "no old counterpart"
	}
	if s := impactReason(tc, impacted, delta); s != "" {
		return "content changed: " + s
	}
	if delta.ModelChanged {
		return "content changed (model changed)"
	}
	return "content changed"
}

// transactionImpacts groups case decisions by transaction, in suite order of
// first appearance.
func transactionImpacts(cases []CaseImpact) []TransactionImpact {
	index := map[string]int{}
	var out []TransactionImpact
	for _, c := range cases {
		i, ok := index[c.Transaction]
		if !ok {
			i = len(out)
			index[c.Transaction] = i
			out = append(out, TransactionImpact{Transaction: c.Transaction})
		}
		t := &out[i]
		switch c.Decision {
		case DecisionKept:
			t.Kept++
		case DecisionRerun:
			t.Rerun++
		case DecisionRegenerated:
			t.Regenerated++
		}
		if c.Reason != "" && c.Reason != "cold store" && !contains(t.Reasons, c.Reason) {
			t.Reasons = append(t.Reasons, c.Reason)
		}
	}
	for i := range out {
		sort.Strings(out[i].Reasons)
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
