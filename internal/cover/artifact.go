// The campaign coverage artifact: the persistent, canonical-JSON record a
// campaign leaves behind — suite coverage plus (for mutation campaigns) the
// kill matrix and the per-operator oracle attribution. The artifact is a
// pure function of the campaign result, so warm (verdict-store replayed)
// and cold campaigns, serial and parallel ones, write identical bytes;
// `concat cover` renders tables and DOT heatmaps from the stored artifact
// without re-running anything.

package cover

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"concat/internal/analysis"
	"concat/internal/core/canon"
	"concat/internal/driver"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

// ArtifactVersion is bumped when the artifact schema changes shape.
const ArtifactVersion = 1

// Artifact is the persisted coverage record of one run or campaign.
type Artifact struct {
	Version   int            `json:"version"`
	Component string         `json:"component"`
	Suite     *SuiteCoverage `json:"suite"`
	// KillMatrix and Operators are present for mutation campaigns only.
	KillMatrix []analysis.KillRow             `json:"killMatrix,omitempty"`
	Operators  []analysis.OperatorAttribution `json:"operators,omitempty"`
}

// FromRun builds a suite-only artifact (selftest / plain run).
func FromRun(g *tfm.Graph, suite *driver.Suite, rep *testexec.Report) (*Artifact, error) {
	sc, err := Compute(g, suite, rep)
	if err != nil {
		return nil, err
	}
	return &Artifact{Version: ArtifactVersion, Component: sc.Component, Suite: sc}, nil
}

// FromCampaign builds the full campaign artifact: the reference run's suite
// coverage plus the mutation kill matrix and oracle attribution. The
// reference report always reflects real execution — verdict-store hits
// replay mutant verdicts, never the reference — so warm and cold campaigns
// produce the same artifact.
func FromCampaign(g *tfm.Graph, suite *driver.Suite, res *analysis.Result) (*Artifact, error) {
	if res == nil || res.Reference == nil {
		return nil, fmt.Errorf("cover: campaign result has no reference report")
	}
	sc, err := Compute(g, suite, res.Reference)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Version:    ArtifactVersion,
		Component:  sc.Component,
		Suite:      sc,
		KillMatrix: res.KillMatrix(),
		Operators:  res.OracleAttribution(),
	}, nil
}

// Encode renders the artifact as canonical JSON (sorted keys, stable
// number formatting) terminated by a newline — the byte-identity contract.
func (a *Artifact) Encode() ([]byte, error) {
	raw, err := canon.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("cover: encoding artifact: %w", err)
	}
	return append(raw, '\n'), nil
}

// Decode parses an artifact previously written by Encode.
func Decode(raw []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("cover: decoding artifact: %w", err)
	}
	if a.Suite == nil {
		return nil, fmt.Errorf("cover: artifact has no suite coverage")
	}
	return &a, nil
}

// Load reads and decodes an artifact stream.
func Load(r io.Reader) (*Artifact, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cover: reading artifact: %w", err)
	}
	return Decode(raw)
}

// Render writes the artifact as human-readable tables: the transaction
// coverage table, the assertion-site telemetry, and — for campaign
// artifacts — the kill matrix and operator attribution.
func (a *Artifact) Render(w io.Writer) error {
	s := a.Suite
	if _, err := fmt.Fprintf(w, "Component: %s (criterion %s, seed %d)\n%s\n",
		a.Component, s.Criterion, s.Seed, s.Summary()); err != nil {
		return fmt.Errorf("cover: rendering artifact: %w", err)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nTRANSACTION\tCASES\tCOMPLETED")
	for _, tx := range s.Transactions {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", tx.Key, tx.Cases, tx.Completed)
	}
	if len(s.AssertionSites) > 0 {
		fmt.Fprintln(tw, "\nASSERTION SITE\tMETHOD\tEXPR\tEVALUATED\tVIOLATED")
		for _, site := range s.AssertionSites {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\n",
				site.Kind, site.Method, site.Expr, site.Evaluated, site.Violated)
		}
	}
	if len(a.KillMatrix) > 0 {
		fmt.Fprintln(tw, "\nMUTANT\tOPERATOR\tMETHOD\tVERDICT\tREASON\tKILLING CASE")
		for _, row := range a.KillMatrix {
			verdict := "survived"
			switch {
			case row.Killed:
				verdict = "killed"
			case row.Equivalent:
				verdict = "equivalent?"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
				row.Mutant, row.Operator, row.Method, verdict, row.Reason, row.KillingCase)
		}
	}
	if len(a.Operators) > 0 {
		fmt.Fprintln(tw, "\nOPERATOR\tMUTANTS\tKILLED\tCRASH\tASSERTION\tOUTPUT-DIFF\tEQUIV?\tALIVE")
		for _, op := range a.Operators {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				op.Operator, op.Mutants, op.Killed, op.ByCrash, op.ByAssertion,
				op.ByOutputDiff, op.Equivalent, op.Alive)
		}
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("cover: rendering artifact: %w", err)
	}
	return nil
}

// WriteHeatmap overlays the artifact's node/edge hit counts on the model as
// a DOT heatmap. The graph must be the model the suite was generated from
// (`concat cover` rebuilds it from the component registry).
func (a *Artifact) WriteHeatmap(w io.Writer, g *tfm.Graph) error {
	if g == nil {
		return fmt.Errorf("cover: heatmap needs the component's TFM graph")
	}
	return g.WriteDOTHeatmap(w, a.Suite.NodeHits(), a.Suite.EdgeHits())
}
