package tspec

import (
	"strings"
	"testing"

	"concat/internal/domain"
)

func baseBuilder() *Builder {
	return NewBuilder("Base").
		Attribute("count", RangeInt(0, 100)).
		Method("m1", "Base", "", CatConstructor).
		Method("m2", "~Base", "", CatDestructor).
		Method("m3", "Add", "", CatUpdate).
		Param("v", RangeInt(1, 10)).
		Uses("count").
		Method("m4", "Get", "int", CatAccess).
		Node("n1", true, "m1").
		Node("n2", false, "m3").
		Node("n3", false, "m4").
		Node("n4", false, "m2").
		Edge("n1", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n3", "n4")
}

func TestBuilderBuildsValidSpec(t *testing.T) {
	s, err := baseBuilder().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if s.Class.Name != "Base" {
		t.Errorf("name = %q", s.Class.Name)
	}
	m3, ok := s.MethodByID("m3")
	if !ok || m3.DeclaredParams != 1 {
		t.Errorf("m3 = %+v", m3)
	}
	n2, ok := s.NodeByID("n2")
	if !ok || n2.OutDeg != 2 {
		t.Errorf("n2 = %+v", n2)
	}
}

func TestBuilderErrorsAreSticky(t *testing.T) {
	_, err := NewBuilder("X").Param("p", RangeInt(0, 1)).Method("m1", "X", "", CatConstructor).Build()
	if err == nil || !strings.Contains(err.Error(), "before any Method") {
		t.Errorf("err = %v", err)
	}
	_, err = NewBuilder("X").Uses("a").Build()
	if err == nil || !strings.Contains(err.Error(), "before any Method") {
		t.Errorf("err = %v", err)
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid spec")
		}
	}()
	NewBuilder("").MustBuild()
}

func TestValidateCatchesProblems(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty class name", func(s *Spec) { s.Class.Name = "" }, "class name is empty"},
		{"self superclass", func(s *Spec) { s.Class.Superclass = s.Class.Name }, "itself as superclass"},
		{"dup attribute", func(s *Spec) { s.Attributes = append(s.Attributes, s.Attributes[0]) }, "duplicate attribute"},
		{"empty attr name", func(s *Spec) { s.Attributes[0].Name = "" }, "attribute with empty name"},
		{"bad attr domain", func(s *Spec) { s.Attributes[0].Domain.Hi = -1 }, "attribute"},
		{"dup method id", func(s *Spec) { s.Methods = append(s.Methods, s.Methods[0]) }, "duplicate method identifier"},
		{"empty method id", func(s *Spec) { s.Methods[0].ID = "" }, "empty identifier"},
		{"empty method name", func(s *Spec) { s.Methods[0].Name = "" }, "empty name"},
		{"bad category", func(s *Spec) { s.Methods[0].Category = 0 }, "invalid category"},
		{"param count mismatch", func(s *Spec) { s.Methods[2].DeclaredParams = 5 }, "declares 5 parameters"},
		{"dup param", func(s *Spec) { s.Methods[2].Params = append(s.Methods[2].Params, s.Methods[2].Params[0]) }, "duplicate parameter"},
		{"bad param domain", func(s *Spec) { s.Methods[2].Params[0].Domain.Hi = -100 }, "parameter"},
		{"unknown uses", func(s *Spec) { s.Methods[2].Uses = []string{"ghost"} }, "undeclared attribute"},
		{"no constructor", func(s *Spec) { s.Methods[0].Category = CatOther; s.Nodes[0].Start = false }, "no constructor"},
		{"no destructor", func(s *Spec) { s.Methods[1].Category = CatOther }, "no destructor"},
		{"dup node", func(s *Spec) { s.Nodes = append(s.Nodes, s.Nodes[0]) }, "duplicate node"},
		{"empty node id", func(s *Spec) { s.Nodes[0].ID = "" }, "node with empty identifier"},
		{"node no methods", func(s *Spec) { s.Nodes[1].Methods = nil }, "lists no methods"},
		{"node unknown method", func(s *Spec) { s.Nodes[1].Methods = []string{"m99"} }, "undeclared method"},
		{"start node non-ctor", func(s *Spec) { s.Nodes[0].Methods = []string{"m3"} }, "non-constructor"},
		{"edge unknown from", func(s *Spec) { s.Edges = append(s.Edges, EdgeDecl{From: "zz", To: "n2"}); s.Nodes[1].OutDeg++ }, "undeclared node"},
		{"outdeg mismatch", func(s *Spec) { s.Nodes[1].OutDeg = 9 }, "declares 9 outgoing"},
		{"redefined without super", func(s *Spec) { s.Redefined = []string{"Add"} }, "without a superclass"},
		{"modattrs without super", func(s *Spec) { s.ModifiedAttributes = []string{"count"} }, "without a superclass"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := baseBuilder().MustBuild().Clone()
			tt.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate passed, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestValidateInheritanceAnnotations(t *testing.T) {
	s := baseBuilder().MustBuild().Clone()
	s.Class.Superclass = "Parent"
	s.Redefined = []string{"Ghost"}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
	s.Redefined = nil
	s.ModifiedAttributes = []string{"ghost"}
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateGraphStructure(t *testing.T) {
	// A spec whose clause-level data is fine but whose graph is broken
	// (final node unreachable) must fail via the TFM validator.
	s := baseBuilder().MustBuild().Clone()
	s.Edges = []EdgeDecl{{From: "n1", To: "n2"}, {From: "n2", To: "n3"}, {From: "n3", To: "n4"}}
	for i := range s.Nodes {
		s.Nodes[i].OutDeg = 1
	}
	s.Nodes[3].OutDeg = 0
	if err := s.Validate(); err != nil {
		t.Fatalf("linear rewiring should validate: %v", err)
	}
	// Now orphan the destructor node.
	s.Edges = s.Edges[:2]
	s.Nodes[2].OutDeg = 0
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "cannot reach any final") {
		t.Errorf("err = %v", err)
	}
}

func TestTFMLowering(t *testing.T) {
	s := baseBuilder().MustBuild()
	g, err := s.TFM()
	if err != nil {
		t.Fatalf("TFM: %v", err)
	}
	if g.Name() != "Base" {
		t.Errorf("graph name = %q", g.Name())
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Errorf("graph = %v", g.Stats())
	}
	n1, _ := g.Node("n1")
	if !n1.Start {
		t.Error("n1 should be start")
	}
	n4, _ := g.Node("n4")
	if !n4.Final {
		t.Error("n4 (destructor node) should be final")
	}
	n2, _ := g.Node("n2")
	if n2.Final {
		t.Error("n2 should not be final")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("lowered graph invalid: %v", err)
	}
}

func TestIsFinalNode(t *testing.T) {
	s := baseBuilder().MustBuild()
	n4, _ := s.NodeByID("n4")
	if !s.IsFinalNode(n4) {
		t.Error("n4 should be final")
	}
	n2, _ := s.NodeByID("n2")
	if s.IsFinalNode(n2) {
		t.Error("n2 should not be final")
	}
	if s.IsFinalNode(NodeDecl{ID: "x"}) {
		t.Error("empty node should not be final")
	}
	if s.IsFinalNode(NodeDecl{ID: "x", Methods: []string{"ghost"}}) {
		t.Error("node with unknown method should not be final")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := baseBuilder().MustBuild()
	cp := s.Clone()
	cp.Attributes[0].Name = "hacked"
	cp.Methods[2].Params[0].Name = "hacked"
	cp.Nodes[0].Methods[0] = "hacked"
	cp.Edges[0].From = "hacked"
	if s.Attributes[0].Name == "hacked" || s.Methods[2].Params[0].Name == "hacked" ||
		s.Nodes[0].Methods[0] == "hacked" || s.Edges[0].From == "hacked" {
		t.Error("Clone shares state with the original")
	}
}

func TestAccessors(t *testing.T) {
	s := baseBuilder().MustBuild()
	if _, ok := s.MethodByID("zz"); ok {
		t.Error("MethodByID(zz) should miss")
	}
	if _, ok := s.MethodByName("zz"); ok {
		t.Error("MethodByName(zz) should miss")
	}
	if _, ok := s.AttributeByName("zz"); ok {
		t.Error("AttributeByName(zz) should miss")
	}
	if _, ok := s.NodeByID("zz"); ok {
		t.Error("NodeByID(zz) should miss")
	}
	if a, ok := s.AttributeByName("count"); !ok || a.Name != "count" {
		t.Errorf("AttributeByName(count) = %+v, %v", a, ok)
	}
	if m, ok := s.MethodByName("Add"); !ok || m.ID != "m3" {
		t.Errorf("MethodByName(Add) = %+v, %v", m, ok)
	}
}

func TestCategoryParseAndString(t *testing.T) {
	for _, c := range []MethodCategory{CatConstructor, CatDestructor, CatUpdate, CatAccess, CatOther} {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%s) = %v, %v", c, got, err)
		}
	}
	if _, err := ParseCategory("nope"); err == nil {
		t.Error("unknown category should fail")
	}
	if MethodCategory(0).String() != "category(0)" {
		t.Errorf("zero category string = %q", MethodCategory(0).String())
	}
}

func TestDomainKindParseAndString(t *testing.T) {
	for _, k := range []DomainKind{DomRange, DomSet, DomString, DomObject, DomPointer, DomBool} {
		got, err := ParseDomainKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseDomainKind(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseDomainKind("nope"); err == nil {
		t.Error("unknown domain kind should fail")
	}
	if DomainKind(0).String() != "domainKind(0)" {
		t.Errorf("zero kind string = %q", DomainKind(0).String())
	}
}

func TestDomainDeclBuild(t *testing.T) {
	cases := []struct {
		name string
		decl DomainDecl
		kind domain.Kind
	}{
		{"int range", RangeInt(1, 5), domain.KindInt},
		{"float range", RangeFloat(0.5, 1.5), domain.KindFloat},
		{"set", SetOf(domain.Int(1), domain.Int(2)), domain.KindInt},
		{"string len", StringLen(1, 5), domain.KindString},
		{"string cands", StringsOf("a", "b"), domain.KindString},
		{"object", ObjectOf("T"), domain.KindObject},
		{"pointer", PointerTo("T", true), domain.KindPointer},
		{"bool", BoolDom(), domain.KindBool},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, err := c.decl.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if d.Kind() != c.kind {
				t.Errorf("kind = %s, want %s", d.Kind(), c.kind)
			}
		})
	}
	if _, err := (DomainDecl{}).Build(); err == nil {
		t.Error("zero DomainDecl should not build")
	}
	if _, err := (DomainDecl{Kind: DomRange, Lo: 5, Hi: 1}).Build(); err == nil {
		t.Error("inverted range should not build")
	}
}

func TestClassify(t *testing.T) {
	parent := baseBuilder().MustBuild()
	child, err := NewBuilder("Sub").
		Extends("Base").
		Attribute("count", RangeInt(0, 100)).
		Attribute("extra", RangeInt(0, 5)).
		Method("m1", "Sub", "", CatConstructor).
		Method("m2", "~Sub", "", CatDestructor).
		Method("m3", "Add", "", CatUpdate).
		Param("v", RangeInt(1, 10)).
		Uses("count").
		Method("m4", "Get", "int", CatAccess).
		Method("m5", "Reset", "", CatUpdate).
		Uses("extra").
		Redefines("Get").
		Node("n1", true, "m1").
		Node("n2", false, "m3").
		Node("n3", false, "m4").
		Node("n4", false, "m5").
		Node("n5", false, "m2").
		Edge("n1", "n2").
		Edge("n2", "n3").
		Edge("n3", "n4").
		Edge("n2", "n5").
		Edge("n4", "n5").
		Build()
	if err != nil {
		t.Fatalf("build child: %v", err)
	}
	cls, err := Classify(parent, child)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	want := map[string]MethodStatus{
		"Sub":   StatusNew, // constructors differ by name from parent's
		"~Sub":  StatusNew,
		"Add":   StatusInherited,
		"Get":   StatusRedefined, // explicit Redefines
		"Reset": StatusNew,
	}
	for name, st := range want {
		if cls[name] != st {
			t.Errorf("Classify[%s] = %s, want %s", name, cls[name], st)
		}
	}
	inh, red, nw := cls.Counts()
	if inh != 1 || red != 1 || nw != 3 {
		t.Errorf("counts = %d/%d/%d", inh, red, nw)
	}
	if names := cls.Names(StatusNew); len(names) != 3 || names[0] != "Reset" {
		t.Errorf("Names(new) = %v", names)
	}
}

func TestClassifyModifiedAttributes(t *testing.T) {
	parent := baseBuilder().MustBuild()
	child := parent.Clone()
	child.Class.Name = "Sub"
	child.Class.Superclass = "Base"
	child.ModifiedAttributes = []string{"count"}
	cls, err := Classify(parent, child)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	// "Add" Uses count, so it becomes redefined; "Get" does not.
	if cls["Add"] != StatusRedefined {
		t.Errorf("Add = %s, want redefined", cls["Add"])
	}
	if cls["Get"] != StatusInherited {
		t.Errorf("Get = %s, want inherited", cls["Get"])
	}
}

func TestClassifySignatureChange(t *testing.T) {
	parent := baseBuilder().MustBuild()
	child := parent.Clone()
	child.Class.Name = "Sub"
	child.Class.Superclass = "Base"
	// Widen Add's parameter domain: spec change forces regeneration.
	child.Methods[2].Params[0].Domain = RangeInt(1, 1000)
	cls, err := Classify(parent, child)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if cls["Add"] != StatusRedefined {
		t.Errorf("Add = %s, want redefined after domain change", cls["Add"])
	}
}

func TestClassifyWrongParent(t *testing.T) {
	parent := baseBuilder().MustBuild()
	child := parent.Clone()
	child.Class.Name = "Sub"
	child.Class.Superclass = "SomeoneElse"
	if _, err := Classify(parent, child); err == nil {
		t.Error("Classify with mismatched superclass should fail")
	}
}

func TestMethodStatusString(t *testing.T) {
	tests := []struct {
		s    MethodStatus
		want string
	}{
		{StatusInherited, "inherited"},
		{StatusRedefined, "redefined"},
		{StatusNew, "new"},
		{MethodStatus(9), "status(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSameSignatureVariants(t *testing.T) {
	base := Method{Name: "f", Return: "int", Category: CatAccess,
		Params: []Param{{Name: "a", Domain: RangeInt(0, 5)}}}
	same := base
	same.Params = []Param{{Name: "a", Domain: RangeInt(0, 5)}}
	if !sameSignature(base, same) {
		t.Error("identical methods should match")
	}
	cases := []Method{
		{Name: "g", Return: "int", Category: CatAccess, Params: base.Params},
		{Name: "f", Return: "", Category: CatAccess, Params: base.Params},
		{Name: "f", Return: "int", Category: CatUpdate, Params: base.Params},
		{Name: "f", Return: "int", Category: CatAccess},
		{Name: "f", Return: "int", Category: CatAccess, Params: []Param{{Name: "b", Domain: RangeInt(0, 5)}}},
		{Name: "f", Return: "int", Category: CatAccess, Params: []Param{{Name: "a", Domain: RangeInt(0, 6)}}},
	}
	for i, c := range cases {
		if sameSignature(base, c) {
			t.Errorf("case %d should differ", i)
		}
	}
}

func TestSameDomainDeclVariants(t *testing.T) {
	a := SetOf(domain.Int(1), domain.Int(2))
	b := SetOf(domain.Int(1), domain.Int(3))
	if sameDomainDecl(a, b) {
		t.Error("different set members should differ")
	}
	c := StringsOf("x")
	d := StringsOf("y")
	if sameDomainDecl(c, d) {
		t.Error("different candidates should differ")
	}
	if !sameDomainDecl(a, SetOf(domain.Int(1), domain.Int(2))) {
		t.Error("equal sets should match")
	}
}
