// Strict parsing of the Prometheus text exposition format (version 0.0.4),
// as served by `concat serve` on /metrics. The parser is deliberately
// unforgiving — the loadgen harness and the CI smoke use it to prove the
// service's exposition output round-trips through a real consumer, so any
// malformed HELP/TYPE line, unbalanced label brace or unparseable value is
// an error, not a skip.

package loadgen

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Scrape is one parsed /metrics exposition: every sample keyed by its full
// series name (family plus sorted label set, exactly as rendered), plus the
// declared TYPE of every family.
type Scrape struct {
	Samples map[string]float64
	Types   map[string]string
}

// Value returns the sample's value, or 0 for an absent series (a counter
// never incremented is legitimately absent from the exposition).
func (s *Scrape) Value(series string) float64 { return s.Samples[series] }

// promKinds are the metric kinds the service emits.
var promKinds = map[string]bool{"counter": true, "gauge": true, "histogram": true}

// sampleFamily strips a histogram sample's _bucket/_sum/_count suffix to
// recover its family name.
func sampleFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

// splitSample splits one sample line into its series name (with any label
// braces) and its value text, honouring spaces inside quoted label values.
func splitSample(line string) (series, value string, err error) {
	// The name may contain {labels} with embedded spaces; the value is the
	// field after the closing brace, or after the first space for a plain
	// name.
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := closingBrace(line, i)
		if j < 0 {
			return "", "", fmt.Errorf("unbalanced label braces in %q", line)
		}
		rest := strings.TrimSpace(line[j+1:])
		if rest == "" {
			return "", "", fmt.Errorf("sample without value in %q", line)
		}
		return line[:j+1], rest, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	return fields[0], fields[1], nil
}

// closingBrace finds the index of the '}' matching the '{' at open,
// skipping escaped characters inside quoted label values.
func closingBrace(line string, open int) int {
	inQuote := false
	for i := open + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped character
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// ParseExposition parses a /metrics body, enforcing the structural
// invariants of the text format: HELP lines carry a docstring, TYPE lines a
// known kind, every sample's family was declared by a TYPE line, and no
// series appears twice.
func ParseExposition(body string) (*Scrape, error) {
	scrape := &Scrape{Samples: map[string]float64{}, Types: map[string]string{}}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			return nil, fmt.Errorf("metrics line %d: blank line", lineNo)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			if len(strings.Fields(rest)) < 2 {
				return nil, fmt.Errorf("metrics line %d: HELP without docstring: %q", lineNo, line)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return nil, fmt.Errorf("metrics line %d: malformed TYPE: %q", lineNo, line)
			}
			family, kind := fields[0], fields[1]
			if !promKinds[kind] {
				return nil, fmt.Errorf("metrics line %d: unknown kind %q", lineNo, kind)
			}
			if prev, ok := scrape.Types[family]; ok && prev != kind {
				return nil, fmt.Errorf("metrics line %d: family %s re-typed %s -> %s", lineNo, family, prev, kind)
			}
			scrape.Types[family] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		series, valueText, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if _, ok := scrape.Types[sampleFamily(name)]; !ok {
			return nil, fmt.Errorf("metrics line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: value %q: %v", lineNo, valueText, err)
		}
		if _, dup := scrape.Samples[series]; dup {
			return nil, fmt.Errorf("metrics line %d: duplicate series %s", lineNo, series)
		}
		scrape.Samples[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scanning metrics body: %w", err)
	}
	if len(scrape.Samples) == 0 {
		return nil, fmt.Errorf("metrics body contains no samples")
	}
	return scrape, nil
}
