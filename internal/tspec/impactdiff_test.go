package tspec

import (
	"reflect"
	"testing"
)

func revClone(t *testing.T) (old, new *Spec) {
	t.Helper()
	old = baseBuilder().MustBuild()
	return old, old.Clone()
}

func TestDiffSpecsIdenticalIsEmpty(t *testing.T) {
	old, new := revClone(t)
	d := DiffSpecs(old, new)
	if !d.Empty() {
		t.Fatalf("identical revisions produced a delta: %+v", d)
	}
}

func TestDiffSpecsDomainChange(t *testing.T) {
	old, new := revClone(t)
	new.Methods[2].Params[0].Domain = RangeInt(1, 5) // Add(v): narrowed
	d := DiffSpecs(old, new)
	want := []MethodDelta{{"Add", ReasonDomainChanged}}
	if !reflect.DeepEqual(d.Impacted, want) {
		t.Fatalf("Impacted = %+v, want %+v", d.Impacted, want)
	}
	if d.ModelChanged || len(d.Removed) != 0 {
		t.Fatalf("unexpected model/removal delta: %+v", d)
	}
}

func TestDiffSpecsSignatureAndConstructorChanges(t *testing.T) {
	t.Run("added parameter", func(t *testing.T) {
		old, new := revClone(t)
		new.Methods[2].Params = append(new.Methods[2].Params, Param{Name: "w", Domain: RangeInt(0, 1)})
		d := DiffSpecs(old, new)
		if got := d.ImpactedReason("Add"); got != ReasonSignatureChanged {
			t.Fatalf("Add reason = %q, want %q", got, ReasonSignatureChanged)
		}
	})
	t.Run("constructor gains parameter", func(t *testing.T) {
		old, new := revClone(t)
		new.Methods[0].Params = append(new.Methods[0].Params, Param{Name: "capacity", Domain: RangeInt(1, 8)})
		d := DiffSpecs(old, new)
		if got := d.ImpactedReason("Base"); got != ReasonSignatureChanged {
			t.Fatalf("ctor reason = %q, want %q", got, ReasonSignatureChanged)
		}
	})
	t.Run("return type change", func(t *testing.T) {
		old, new := revClone(t)
		new.Methods[3].Return = "int64" // Get
		d := DiffSpecs(old, new)
		if got := d.ImpactedReason("Get"); got != ReasonSignatureChanged {
			t.Fatalf("Get reason = %q, want %q", got, ReasonSignatureChanged)
		}
	})
}

func TestDiffSpecsRenamedMethod(t *testing.T) {
	old, new := revClone(t)
	new.Methods[3].Name = "Peek" // Get -> Peek
	d := DiffSpecs(old, new)
	if got := d.ImpactedReason("Peek"); got != ReasonAdded {
		t.Fatalf("Peek reason = %q, want %q", got, ReasonAdded)
	}
	if !reflect.DeepEqual(d.Removed, []string{"Get"}) {
		t.Fatalf("Removed = %v, want [Get]", d.Removed)
	}
}

func TestDiffSpecsNewlyRedefined(t *testing.T) {
	old, new := revClone(t)
	old.Redefined = []string{"Get"}
	new.Redefined = []string{"Get", "Add"}
	d := DiffSpecs(old, new)
	// Get was already redefined in the old revision — not newly invalidated.
	want := []MethodDelta{{"Add", ReasonRedefined}}
	if !reflect.DeepEqual(d.Impacted, want) {
		t.Fatalf("Impacted = %+v, want %+v", d.Impacted, want)
	}
}

func TestDiffSpecsAttributeDomainChangeHitsUsers(t *testing.T) {
	old, new := revClone(t)
	new.Attributes[0].Domain = RangeInt(0, 50) // count: narrowed
	d := DiffSpecs(old, new)
	// Only Add Uses count.
	want := []MethodDelta{{"Add", ReasonUsesModifiedAttribute}}
	if !reflect.DeepEqual(d.Impacted, want) {
		t.Fatalf("Impacted = %+v, want %+v", d.Impacted, want)
	}
}

func TestDiffSpecsModifiedAttributesClause(t *testing.T) {
	old, new := revClone(t)
	new.ModifiedAttributes = []string{"count"}
	d := DiffSpecs(old, new)
	if got := d.ImpactedReason("Add"); got != ReasonUsesModifiedAttribute {
		t.Fatalf("Add reason = %q, want %q", got, ReasonUsesModifiedAttribute)
	}
}

func TestDiffSpecsModelChange(t *testing.T) {
	t.Run("edge removed", func(t *testing.T) {
		old, new := revClone(t)
		new.Edges = new.Edges[:len(new.Edges)-1]
		d := DiffSpecs(old, new)
		if !d.ModelChanged {
			t.Fatal("edge removal not flagged as model change")
		}
		if len(d.Impacted) != 0 {
			t.Fatalf("model-only change impacted methods: %+v", d.Impacted)
		}
	})
	t.Run("node methods reordered", func(t *testing.T) {
		old, new := revClone(t)
		new.Nodes[1].Methods = append([]string{"m4"}, new.Nodes[1].Methods...)
		new.Nodes[1].OutDeg = old.Nodes[1].OutDeg
		d := DiffSpecs(old, new)
		if !d.ModelChanged {
			t.Fatal("node method change not flagged as model change")
		}
	})
}

// --- Classify over transitive Extends chains (depth >= 3) ---

// chainSpecs builds Base -> L1 -> L2 -> L3, each level a clone of its parent
// with the superclass link set. Callers mutate individual levels.
func chainSpecs(t *testing.T) []*Spec {
	t.Helper()
	specs := []*Spec{baseBuilder().MustBuild()}
	names := []string{"L1", "L2", "L3"}
	for i, name := range names {
		child := specs[i].Clone()
		child.Class.Name = name
		child.Class.Superclass = specs[i].Class.Name
		child.Redefined = nil
		child.ModifiedAttributes = nil
		specs = append(specs, child)
	}
	return specs
}

// classifyChain applies Classify pairwise down the chain and returns one
// classification per link.
func classifyChain(t *testing.T, specs []*Spec) []Classification {
	t.Helper()
	out := make([]Classification, 0, len(specs)-1)
	for i := 1; i < len(specs); i++ {
		out = append(out, classify(t, specs[i-1], specs[i]))
	}
	return out
}

// A depth-3 chain of pure clones inherits everything at every link: no
// false redefinitions accumulate over transitive Extends.
func TestClassifyTransitiveChainAllInherited(t *testing.T) {
	specs := chainSpecs(t)
	for link, cls := range classifyChain(t, specs) {
		for name, st := range cls {
			if st != StatusInherited {
				t.Errorf("link %d: %s = %s, want inherited", link, name, st)
			}
		}
	}
}

// A redefinition at one level is visible exactly at that link: the level
// below still classifies the method inherited (its own spec matches its
// parent's), and the level above never saw it. The impact engine depends on
// this locality — a mid-chain redefinition must not invalidate the whole
// chain's suites.
func TestClassifyTransitiveChainMidRedefinition(t *testing.T) {
	specs := chainSpecs(t)
	specs[2].Redefined = []string{"Add"} // redefined in L2 only
	cls := classifyChain(t, specs)
	if cls[0]["Add"] != StatusInherited {
		t.Errorf("Base->L1 Add = %s, want inherited", cls[0]["Add"])
	}
	if cls[1]["Add"] != StatusRedefined {
		t.Errorf("L1->L2 Add = %s, want redefined", cls[1]["Add"])
	}
	if cls[2]["Add"] != StatusInherited {
		t.Errorf("L2->L3 Add = %s, want inherited (L3 matches L2's spec)", cls[2]["Add"])
	}
}

// A domain change introduced mid-chain propagates structurally: the changed
// link reports redefined, and deeper links — which inherit the changed
// domain — report inherited again, while classifying the leaf directly
// against the root still sees the difference.
func TestClassifyTransitiveChainDomainChange(t *testing.T) {
	specs := chainSpecs(t)
	// Change Add's parameter domain at L1 and propagate the same domain to
	// L2/L3 (they are clones taken before the edit, so re-apply).
	for _, s := range specs[1:] {
		s.Methods[2].Params[0].Domain = RangeInt(1, 5)
	}
	cls := classifyChain(t, specs)
	if cls[0]["Add"] != StatusRedefined {
		t.Errorf("Base->L1 Add = %s, want redefined (domain changed)", cls[0]["Add"])
	}
	if cls[1]["Add"] != StatusInherited || cls[2]["Add"] != StatusInherited {
		t.Errorf("deeper links = %s/%s, want inherited/inherited", cls[1]["Add"], cls[2]["Add"])
	}
	// Leaf against root (re-frame the superclass) sees the change.
	leaf := specs[3].Clone()
	leaf.Class.Superclass = specs[0].Class.Name
	if got := classify(t, specs[0], leaf)["Add"]; got != StatusRedefined {
		t.Errorf("Base->L3 Add = %s, want redefined", got)
	}
}

// Multi-level redefinition precedence (diamond-free): when a method is
// explicitly redefined at L1 and again at L3, each redefining link reports
// redefined and the quiet middle link reports inherited; new methods added
// mid-chain classify New exactly once and inherited afterwards.
func TestClassifyMultiLevelRedefinitionPrecedence(t *testing.T) {
	specs := chainSpecs(t)
	specs[1].Redefined = []string{"Get"}
	specs[3].Redefined = []string{"Get"}
	// L2 adds a genuinely new method.
	for _, s := range specs[2:] {
		s.Methods = append(s.Methods, Method{ID: "m9", Name: "Reset", Category: CatUpdate})
	}
	cls := classifyChain(t, specs)

	if cls[0]["Get"] != StatusRedefined {
		t.Errorf("Base->L1 Get = %s, want redefined", cls[0]["Get"])
	}
	if cls[1]["Get"] != StatusInherited {
		t.Errorf("L1->L2 Get = %s, want inherited (no redefinition at L2)", cls[1]["Get"])
	}
	if cls[2]["Get"] != StatusRedefined {
		t.Errorf("L2->L3 Get = %s, want redefined again", cls[2]["Get"])
	}

	if _, ok := cls[0]["Reset"]; ok {
		t.Error("Base->L1 classified Reset before it exists")
	}
	if cls[1]["Reset"] != StatusNew {
		t.Errorf("L1->L2 Reset = %s, want new", cls[1]["Reset"])
	}
	if cls[2]["Reset"] != StatusInherited {
		t.Errorf("L2->L3 Reset = %s, want inherited", cls[2]["Reset"])
	}
}
