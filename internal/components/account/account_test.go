package account

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/mutation"
)

func newTestAccount(t *testing.T, ctor string, args ...domain.Value) component.Instance {
	t.Helper()
	inst, err := NewFactory().New(ctor, args)
	if err != nil {
		t.Fatalf("New(%s): %v", ctor, err)
	}
	inst.SetBITMode(bit.ModeTest)
	return inst
}

func TestSpecIsValid(t *testing.T) {
	s := Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	if s.Class.Name != Name {
		t.Errorf("spec name = %q", s.Class.Name)
	}
	g, err := s.TFM()
	if err != nil {
		t.Fatalf("TFM: %v", err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 9 {
		t.Errorf("model = %v", g.Stats())
	}
}

func TestConstructors(t *testing.T) {
	a := newTestAccount(t, "Account")
	out, err := a.Invoke("Balance", nil)
	if err != nil || out[0].MustInt() != 0 {
		t.Errorf("default balance = %v, %v", out, err)
	}
	b := newTestAccount(t, "AccountOf", domain.Str("alice"), domain.Int(500))
	out, err = b.Invoke("Owner", nil)
	if err != nil || out[0].MustString() != "alice" {
		t.Errorf("owner = %v, %v", out, err)
	}
	out, err = b.Invoke("Balance", nil)
	if err != nil || out[0].MustInt() != 500 {
		t.Errorf("opening balance = %v, %v", out, err)
	}
}

func TestConstructorErrors(t *testing.T) {
	f := NewFactory()
	if _, err := f.New("Nope", nil); err == nil {
		t.Error("unknown constructor should fail")
	}
	if _, err := f.New("Account", []domain.Value{domain.Int(1)}); err == nil {
		t.Error("Account with args should fail")
	}
	if _, err := f.New("AccountOf", []domain.Value{domain.Str("x"), domain.Int(-1)}); err == nil {
		t.Error("negative opening balance should fail")
	}
	if _, err := f.New("AccountOf", []domain.Value{domain.Str("x"), domain.Int(MaxBalance + 1)}); err == nil {
		t.Error("excessive opening balance should fail")
	}
}

func TestDepositWithdraw(t *testing.T) {
	a := newTestAccount(t, "Account")
	out, err := a.Invoke("Deposit", []domain.Value{domain.Int(100)})
	if err != nil || out[0].MustInt() != 100 {
		t.Fatalf("deposit = %v, %v", out, err)
	}
	out, err = a.Invoke("Withdraw", []domain.Value{domain.Int(40)})
	if err != nil || out[0].MustInt() != 60 {
		t.Fatalf("withdraw = %v, %v", out, err)
	}
	// Insufficient funds: domain error, not a violation.
	_, err = a.Invoke("Withdraw", []domain.Value{domain.Int(1000)})
	if err == nil || errors.Is(err, bit.ErrViolation) {
		t.Errorf("overdraw err = %v", err)
	}
	// Non-positive amounts: precondition violations.
	_, err = a.Invoke("Deposit", []domain.Value{domain.Int(0)})
	if !errors.Is(err, &bit.Violation{Kind: bit.KindPrecondition}) {
		t.Errorf("zero deposit err = %v", err)
	}
	_, err = a.Invoke("Withdraw", []domain.Value{domain.Int(-5)})
	if !errors.Is(err, &bit.Violation{Kind: bit.KindPrecondition}) {
		t.Errorf("negative withdraw err = %v", err)
	}
	// Deposit beyond the cap: domain error.
	a2 := newTestAccount(t, "AccountOf", domain.Str("bob"), domain.Int(MaxBalance-10))
	if _, err := a2.Invoke("Deposit", []domain.Value{domain.Int(100)}); err == nil {
		t.Error("cap-exceeding deposit should fail")
	}
}

func TestInvokeArgumentValidation(t *testing.T) {
	a := newTestAccount(t, "Account")
	if _, err := a.Invoke("Deposit", []domain.Value{domain.Str("x")}); err == nil {
		t.Error("string deposit arg should fail")
	}
	if _, err := a.Invoke("Balance", []domain.Value{domain.Int(1)}); err == nil {
		t.Error("Balance with args should fail")
	}
	if _, err := a.Invoke("Nope", nil); !errors.Is(err, component.ErrUnknownMethod) {
		t.Errorf("unknown method err = %v", err)
	}
}

func TestDestroy(t *testing.T) {
	a := newTestAccount(t, "Account")
	if err := a.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if _, err := a.Invoke("Balance", nil); !errors.Is(err, component.ErrDestroyed) {
		t.Errorf("post-destroy invoke err = %v", err)
	}
}

func TestInvariantAndReporter(t *testing.T) {
	f := NewFactory()
	inst, err := f.New("Account", nil)
	if err != nil {
		t.Fatal(err)
	}
	// BIT services gated outside test mode.
	if err := inst.InvariantTest(); !errors.Is(err, bit.ErrBITDisabled) {
		t.Errorf("off-mode invariant err = %v", err)
	}
	if err := inst.Reporter(io.Discard); !errors.Is(err, bit.ErrBITDisabled) {
		t.Errorf("off-mode reporter err = %v", err)
	}
	inst.SetBITMode(bit.ModeTest)
	if err := inst.InvariantTest(); err != nil {
		t.Errorf("invariant on valid state: %v", err)
	}
	var sb strings.Builder
	if err := inst.Reporter(&sb); err != nil {
		t.Fatalf("Reporter: %v", err)
	}
	if !strings.Contains(sb.String(), "balance: 0") {
		t.Errorf("report = %q", sb.String())
	}
	// Corrupt state directly: invariant must catch it.
	acc := inst.(*Account)
	acc.balance = -1
	if err := inst.InvariantTest(); !errors.Is(err, &bit.Violation{Kind: bit.KindInvariant}) {
		t.Errorf("corrupted invariant err = %v", err)
	}
	acc.balance = MaxBalance + 1
	if err := inst.InvariantTest(); !errors.Is(err, &bit.Violation{Kind: bit.KindInvariant}) {
		t.Errorf("over-cap invariant err = %v", err)
	}
}

func TestMutationSiteInstrumentation(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	f := NewFactoryWithEngine(eng)
	// Activate the BitNeg mutant on Withdraw/remaining and observe the fault.
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpBitNeg}, nil) {
		if m.Site == "Withdraw/remaining" {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("BitNeg mutant on Withdraw/remaining not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	inst, err := f.New("AccountOf", []domain.Value{domain.Str("alice"), domain.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	_, err = inst.Invoke("Withdraw", []domain.Value{domain.Int(30)})
	// remaining = 70 -> ^70 = -71: balance goes negative.
	if err != nil {
		t.Fatalf("mutated withdraw errored early: %v", err)
	}
	if err := inst.InvariantTest(); !errors.Is(err, bit.ErrViolation) {
		t.Errorf("mutant should break the invariant, got %v", err)
	}
	if !eng.Infected() || !eng.Reached() {
		t.Error("mutant should be reached and infected")
	}
	// Deactivated engine: behaviour back to normal.
	eng.Deactivate()
	inst2, _ := f.New("AccountOf", []domain.Value{domain.Str("bob"), domain.Int(100)})
	inst2.SetBITMode(bit.ModeTest)
	out, err := inst2.Invoke("Withdraw", []domain.Value{domain.Int(30)})
	if err != nil || out[0].MustInt() != 70 {
		t.Errorf("deactivated withdraw = %v, %v", out, err)
	}
}

func TestSitesAreRegistrable(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	ms := eng.Enumerate(nil, nil)
	if len(ms) == 0 {
		t.Fatal("no mutants enumerable from account sites")
	}
	for _, m := range ms {
		if m.Method != "Withdraw" {
			t.Errorf("unexpected mutant method %q", m.Method)
		}
	}
}

func TestBalanceNeverNegativeProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		inst, err := NewFactory().New("Account", nil)
		if err != nil {
			return false
		}
		inst.SetBITMode(bit.ModeTest)
		acc := inst.(*Account)
		for _, op := range ops {
			amt := domain.Int(int64(op%1000) + 1) // 1..1000
			if op%2 == 0 {
				_, _ = inst.Invoke("Deposit", []domain.Value{amt})
			} else {
				_, _ = inst.Invoke("Withdraw", []domain.Value{amt})
			}
			if acc.CurrentBalance() < 0 || acc.CurrentBalance() > MaxBalance {
				return false
			}
			if err := inst.InvariantTest(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetTestState(t *testing.T) {
	f := NewFactory()
	inst, _ := f.New("Account", nil)
	ss, ok := inst.(component.StateSettable)
	if !ok {
		t.Fatal("Account should implement StateSettable")
	}
	// Gated by BIT access control.
	if err := ss.SetTestState(map[string]domain.Value{"balance": domain.Int(5)}); !errors.Is(err, bit.ErrBITDisabled) {
		t.Errorf("off-mode SetTestState err = %v", err)
	}
	inst.SetBITMode(bit.ModeTest)
	err := ss.SetTestState(map[string]domain.Value{
		"balance": domain.Int(777),
		"owner":   domain.Str("dana"),
	})
	if err != nil {
		t.Fatalf("SetTestState: %v", err)
	}
	out, _ := inst.Invoke("Balance", nil)
	if out[0].MustInt() != 777 {
		t.Errorf("balance after set = %v", out)
	}
	out, _ = inst.Invoke("Owner", nil)
	if out[0].MustString() != "dana" {
		t.Errorf("owner after set = %v", out)
	}
	// An invariant-breaking state is rejected with a violation.
	if err := ss.SetTestState(map[string]domain.Value{"balance": domain.Int(-1)}); !errors.Is(err, bit.ErrViolation) {
		t.Errorf("invalid state err = %v", err)
	}
	// Kind mismatches are rejected.
	if err := ss.SetTestState(map[string]domain.Value{"balance": domain.Str("x")}); err == nil {
		t.Error("kind mismatch should fail")
	}
	if err := ss.SetTestState(map[string]domain.Value{"owner": domain.Int(1)}); err == nil {
		t.Error("owner kind mismatch should fail")
	}
	// Reset returns to the post-construction state.
	if err := ss.ResetTestState(); err != nil {
		t.Fatalf("ResetTestState: %v", err)
	}
	out, _ = inst.Invoke("Balance", nil)
	if out[0].MustInt() != 0 {
		t.Errorf("balance after reset = %v", out)
	}
}

func TestResetGatedByMode(t *testing.T) {
	inst, _ := NewFactory().New("Account", nil)
	ss := inst.(component.StateSettable)
	if err := ss.ResetTestState(); !errors.Is(err, bit.ErrBITDisabled) {
		t.Errorf("off-mode reset err = %v", err)
	}
}
