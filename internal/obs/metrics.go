package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// histBounds are the duration histogram's bucket upper bounds in
// microseconds (decimal decades from 100µs to 100s, plus +Inf).
var histBounds = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// bucketLabel renders the bucket containing us.
func bucketLabel(us int64) string {
	for _, b := range histBounds {
		if us <= b {
			return fmt.Sprintf("<=%s", time.Duration(b*1000))
		}
	}
	return "+Inf"
}

// slowestN is how many labelled observations each slowest-tracker keeps.
const slowestN = 10

// EscapeLabelValue escapes a Prometheus label value per the text exposition
// format (version 0.0.4): backslash, double quote and line feed become \\,
// \" and \n. Everything else — including other control characters and
// non-ASCII — passes through unchanged, which is what the format specifies.
func EscapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Labeled builds an internal metric name carrying a Prometheus label set:
// "family{k1=\"v1\",k2=\"v2\"}". Pairs alternate key, value; keys must
// already be valid Prometheus label names, values are escaped here. Pairs
// are sorted by key so the same logical series always yields the same
// string — the name doubles as the series identity in the counter map and
// in client-side cross-checks against a /metrics scrape.
func Labeled(family string, pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic("obs: Labeled needs alternating key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// hist is one duration histogram.
type hist struct {
	count   int64
	sumUS   int64
	minUS   int64
	maxUS   int64
	buckets map[string]int64
}

func (h *hist) observe(us int64) {
	if h.count == 0 || us < h.minUS {
		h.minUS = us
	}
	if us > h.maxUS {
		h.maxUS = us
	}
	h.count++
	h.sumUS += us
	h.buckets[bucketLabel(us)]++
}

// SlowEntry is one labelled observation in a slowest-N list.
type SlowEntry struct {
	Label string `json:"label"`
	DurUS int64  `json:"durUs"`
}

// Metrics accumulates counters, duration histograms and slowest-N
// trackers for a run or campaign. All methods are safe for concurrent use
// and safe on a nil receiver (the disabled metrics), mirroring Tracer.
//
// Like spans, metric *values* involving time are wall-clock and belong to
// the side channel only; counter values (outcomes, kills) are
// deterministic for a fixed seed.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*hist
	slowest  map[string][]SlowEntry
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		hists:    make(map[string]*hist),
		slowest:  make(map[string][]SlowEntry),
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Observe records a duration in the named histogram. A non-empty label
// additionally feeds the histogram's slowest-N list (e.g. the slowest
// cases of a suite, by case ID).
func (m *Metrics) Observe(name, label string, d time.Duration) {
	if m == nil {
		return
	}
	us := d.Microseconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = &hist{buckets: make(map[string]int64)}
		m.hists[name] = h
	}
	h.observe(us)
	if label == "" {
		return
	}
	entries := append(m.slowest[name], SlowEntry{Label: label, DurUS: us})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].DurUS != entries[j].DurUS {
			return entries[i].DurUS > entries[j].DurUS
		}
		return entries[i].Label < entries[j].Label
	})
	if len(entries) > slowestN {
		entries = entries[:slowestN]
	}
	m.slowest[name] = entries
}

// HistogramSnapshot is a histogram's exportable form.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumUS   int64            `json:"sumUs"`
	MinUS   int64            `json:"minUs"`
	MaxUS   int64            `json:"maxUs"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot is the exportable aggregate: counters, duration histograms and
// slowest-N lists. JSON encoding is deterministic up to the time-derived
// values (map keys sort).
type Snapshot struct {
	Counters  map[string]int64             `json:"counters"`
	Durations map[string]HistogramSnapshot `json:"durations"`
	Slowest   map[string][]SlowEntry       `json:"slowest,omitempty"`
}

// Snapshot copies the current state into an exportable form.
func (m *Metrics) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:  make(map[string]int64),
		Durations: make(map[string]HistogramSnapshot),
		Slowest:   make(map[string][]SlowEntry),
	}
	if m == nil {
		return snap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		snap.Counters[k] = v
	}
	for k, h := range m.hists {
		buckets := make(map[string]int64, len(h.buckets))
		for b, n := range h.buckets {
			buckets[b] = n
		}
		snap.Durations[k] = HistogramSnapshot{
			Count: h.count, SumUS: h.sumUS, MinUS: h.minUS, MaxUS: h.maxUS,
			Buckets: buckets,
		}
	}
	for k, entries := range m.slowest {
		snap.Slowest[k] = append([]SlowEntry(nil), entries...)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encoding metrics snapshot: %w", err)
	}
	return nil
}
