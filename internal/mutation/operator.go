// Package mutation implements the interface-mutation fault model the paper
// uses for its empirical evaluation (§4, Table 1). Interface mutation
// (Delamaro) perturbs the points where a called routine uses non-interface
// variables — locals and globals that affect values returned to the caller —
// modelling integration faults between the methods that interact inside a
// transaction.
//
// The paper inserted these faults by hand into C++ source and compiled each
// mutant separately. Here mutants execute in-process: a component declares
// its variable-use sites (Site) and routes each use through an Engine; the
// analysis activates one mutant at a time, the engine substitutes the value
// the operator dictates, and the whole suite runs against the mutant without
// recompilation. Package srcmut provides the complementary source-level
// mutator for real Go files.
package mutation

import (
	"fmt"
	"math"

	"concat/internal/domain"
)

// Operator is an interface-mutation operator from Table 1.
type Operator int

// The five essential interface-mutation operators used in the paper's
// experiments (Table 1).
const (
	// OpBitNeg — IndVarBitNeg: inserts bitwise negation at a non-interface
	// variable use.
	OpBitNeg Operator = iota + 1
	// OpRepGlob — IndVarRepGlob: replaces a non-interface variable by a
	// member of G(R2), the globals (class attributes) used in the method.
	OpRepGlob
	// OpRepLoc — IndVarRepLoc: replaces a non-interface variable by a member
	// of L(R2), the locals defined in the method.
	OpRepLoc
	// OpRepExt — IndVarRepExt: replaces a non-interface variable by a member
	// of E(R2), the globals NOT used in the method.
	OpRepExt
	// OpRepReq — IndVarRepReq: replaces a non-interface variable by a member
	// of RC, the required constants (NULL, MAXINT, MININT, ...).
	OpRepReq
)

// AllOperators lists the operators in Table 1 order.
var AllOperators = []Operator{OpBitNeg, OpRepGlob, OpRepLoc, OpRepExt, OpRepReq}

var operatorNames = map[Operator]string{
	OpBitNeg:  "IndVarBitNeg",
	OpRepGlob: "IndVarRepGlob",
	OpRepLoc:  "IndVarRepLoc",
	OpRepExt:  "IndVarRepExt",
	OpRepReq:  "IndVarRepReq",
}

var operatorDescriptions = map[Operator]string{
	OpBitNeg:  "Inserts bitwise negation at non-interface variable use",
	OpRepGlob: "Replaces non-interface variable by G(R2)",
	OpRepLoc:  "Replaces non-interface variable by L(R2)",
	OpRepExt:  "Replaces non-interface variable by E(R2)",
	OpRepReq:  "Replaces non-interface variable by RC",
}

// String returns the operator's Table 1 name.
func (o Operator) String() string {
	if s, ok := operatorNames[o]; ok {
		return s
	}
	return fmt.Sprintf("operator(%d)", int(o))
}

// Description returns the operator's Table 1 description.
func (o Operator) Description() string {
	if s, ok := operatorDescriptions[o]; ok {
		return s
	}
	return ""
}

// ParseOperator resolves a Table 1 operator name.
func ParseOperator(s string) (Operator, error) {
	for o, name := range operatorNames {
		if name == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("mutation: unknown operator %q", s)
}

// RequiredConstants returns RC, the required-constant set for a value kind:
// the paper's "special values such as NULL, MAXINT (greatest positive
// integer), MININT (least negative integer), and so on".
func RequiredConstants(k domain.Kind) []domain.Value {
	switch k {
	case domain.KindInt:
		return []domain.Value{
			domain.Int(0),
			domain.Int(1),
			domain.Int(-1),
			domain.Int(math.MaxInt64),
			domain.Int(math.MinInt64),
		}
	case domain.KindFloat:
		return []domain.Value{
			domain.Float(0),
			domain.Float(1),
			domain.Float(-1),
			domain.Float(math.MaxFloat64),
			domain.Float(-math.MaxFloat64),
		}
	case domain.KindString:
		return []domain.Value{domain.Str("")}
	case domain.KindPointer, domain.KindObject:
		return []domain.Value{domain.Nil()}
	case domain.KindBool:
		return []domain.Value{domain.Bool(false), domain.Bool(true)}
	default:
		return nil
	}
}
