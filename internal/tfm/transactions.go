package tfm

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
)

// Transaction is one allowable birth-to-death path through the model: the
// unit of work the paper's transaction coverage criterion exercises.
type Transaction struct {
	// Path is the node sequence from a start node to a final node.
	Path []NodeID
}

// Key returns a canonical string identity for the transaction, used by the
// test history to associate test cases with transactions across runs.
func (t Transaction) Key() string {
	parts := make([]string, len(t.Path))
	for i, id := range t.Path {
		parts[i] = string(id)
	}
	return strings.Join(parts, ">")
}

// String renders the path like "n1 -> n2 -> n4".
func (t Transaction) String() string {
	parts := make([]string, len(t.Path))
	for i, id := range t.Path {
		parts[i] = string(id)
	}
	return strings.Join(parts, " -> ")
}

// EnumOptions bound transaction enumeration. Real TFMs contain cycles
// (update loops), so the path space is infinite; the enumerator visits each
// edge at most LoopBound times within a single transaction.
type EnumOptions struct {
	// LoopBound is the maximum number of traversals of any single edge in
	// one transaction. Zero means 1 (simple paths plus at most one pass
	// through each cycle edge).
	LoopBound int
	// MaxTransactions truncates enumeration. Zero means no limit.
	MaxTransactions int
	// MaxLength bounds the node length of a single transaction; zero means
	// 4 * number of nodes, a generous default that admits loop unrollings.
	MaxLength int
}

func (o EnumOptions) withDefaults(g *Graph) EnumOptions {
	if o.LoopBound <= 0 {
		o.LoopBound = 1
	}
	if o.MaxLength <= 0 {
		o.MaxLength = 4 * g.NumNodes()
		if o.MaxLength == 0 {
			o.MaxLength = 1
		}
	}
	return o
}

// ErrTruncated reports that enumeration stopped at MaxTransactions before
// exhausting the bounded path space. Callers decide whether partial coverage
// is acceptable; the CLI surfaces it as a warning.
var ErrTruncated = errors.New("tfm: transaction enumeration truncated at limit")

// Transactions enumerates every transaction of the bounded path space in
// deterministic (depth-first, successor-insertion) order. If the enumeration
// hits opts.MaxTransactions the returned error wraps ErrTruncated but the
// transactions gathered so far are still returned.
func (g *Graph) Transactions(opts EnumOptions) ([]Transaction, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("enumerating transactions: %w", err)
	}
	opts = opts.withDefaults(g)

	var (
		out       []Transaction
		path      []NodeID
		edgeCount = make(map[Edge]int)
		truncated bool
	)
	var dfs func(id NodeID)
	dfs = func(id NodeID) {
		if truncated {
			return
		}
		path = append(path, id)
		defer func() { path = path[:len(path)-1] }()
		if len(path) > opts.MaxLength {
			return
		}
		if g.nodes[id].Final {
			out = append(out, Transaction{Path: append([]NodeID(nil), path...)})
			if opts.MaxTransactions > 0 && len(out) >= opts.MaxTransactions {
				truncated = true
			}
			return
		}
		for _, next := range g.succ[id] {
			e := Edge{From: id, To: next}
			if edgeCount[e] >= opts.LoopBound {
				continue
			}
			edgeCount[e]++
			dfs(next)
			edgeCount[e]--
			if truncated {
				return
			}
		}
	}
	for _, start := range g.StartNodes() {
		dfs(start)
	}
	if truncated {
		return out, fmt.Errorf("%w (%d transactions)", ErrTruncated, len(out))
	}
	return out, nil
}

// Criterion selects which elements of the model a test suite must cover
// (§2.2 of the paper: "they define the elements of the test model that
// should be covered by the tests"). Transaction coverage is the criterion
// the paper's Driver Generator implements; node and link coverage are the
// weaker structural criteria of Beizer §6.4.2 and are provided for the
// ablation benchmarks.
type Criterion int

// Supported coverage criteria.
const (
	// CoverTransactions: each individual transaction at least once.
	CoverTransactions Criterion = iota + 1
	// CoverLinks: each edge at least once (all-links).
	CoverLinks
	// CoverNodes: each node at least once (all-nodes).
	CoverNodes
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case CoverTransactions:
		return "all-transactions"
	case CoverLinks:
		return "all-links"
	case CoverNodes:
		return "all-nodes"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Select returns a transaction set adequate for the criterion. For
// CoverTransactions it is the full bounded enumeration; for CoverLinks and
// CoverNodes it greedily picks a subset of the enumeration that covers every
// edge (resp. node) reachable in the bounded space.
func (g *Graph) Select(c Criterion, opts EnumOptions) ([]Transaction, error) {
	all, err := g.Transactions(opts)
	if err != nil && !errors.Is(err, ErrTruncated) {
		return nil, err
	}
	switch c {
	case CoverTransactions:
		return all, err
	case CoverLinks:
		return greedyCover(all, func(t Transaction) []string {
			items := make([]string, 0, len(t.Path)-1)
			for i := 0; i+1 < len(t.Path); i++ {
				items = append(items, string(t.Path[i])+">"+string(t.Path[i+1]))
			}
			return items
		}), err
	case CoverNodes:
		return greedyCover(all, func(t Transaction) []string {
			items := make([]string, len(t.Path))
			for i, id := range t.Path {
				items[i] = string(id)
			}
			return items
		}), err
	default:
		return nil, fmt.Errorf("tfm: unknown criterion %v", c)
	}
}

// greedyCover repeatedly picks the transaction covering the most yet-uncovered
// items until no transaction adds coverage.
func greedyCover(ts []Transaction, items func(Transaction) []string) []Transaction {
	uncovered := make(map[string]bool)
	for _, t := range ts {
		for _, it := range items(t) {
			uncovered[it] = true
		}
	}
	var out []Transaction
	used := make([]bool, len(ts))
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for i, t := range ts {
			if used[i] {
				continue
			}
			gain := 0
			for _, it := range items(t) {
				if uncovered[it] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, ts[best])
		for _, it := range items(ts[best]) {
			delete(uncovered, it)
		}
	}
	return out
}

// RandomWalk produces one random transaction: from a random start node,
// follow uniformly random successors until a final node, bounding total
// length. It is the generator behind soak/fuzz testing of components and is
// also used by property tests to sample the transaction space.
func (g *Graph) RandomWalk(r *rand.Rand, maxLen int) (Transaction, error) {
	if err := g.Validate(); err != nil {
		return Transaction{}, fmt.Errorf("random walk: %w", err)
	}
	if maxLen <= 0 {
		maxLen = 4 * g.NumNodes()
	}
	starts := g.StartNodes()
	cur := starts[r.IntN(len(starts))]
	path := []NodeID{cur}
	for !g.nodes[cur].Final {
		if len(path) >= maxLen {
			// Out of budget: steer to a final node via shortest path, so the
			// walk always yields a complete (birth-to-death) transaction.
			rest, ok := g.shortestToFinal(cur)
			if !ok {
				return Transaction{}, fmt.Errorf("tfm: node %s cannot reach a final node", cur)
			}
			path = append(path, rest...)
			return Transaction{Path: path}, nil
		}
		succ := g.succ[cur]
		cur = succ[r.IntN(len(succ))]
		path = append(path, cur)
	}
	return Transaction{Path: path}, nil
}

// shortestToFinal returns the node sequence (excluding from) of a shortest
// path from the given node to any final node.
func (g *Graph) shortestToFinal(from NodeID) ([]NodeID, bool) {
	type item struct {
		id   NodeID
		prev int
	}
	queue := []item{{id: from, prev: -1}}
	seen := map[NodeID]bool{from: true}
	for i := 0; i < len(queue); i++ {
		it := queue[i]
		if g.nodes[it.id].Final {
			var rev []NodeID
			for j := i; j > 0; j = queue[j].prev {
				rev = append(rev, queue[j].id)
			}
			out := make([]NodeID, 0, len(rev))
			for k := len(rev) - 1; k >= 0; k-- {
				out = append(out, rev[k])
			}
			return out, true
		}
		for _, next := range g.succ[it.id] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, item{id: next, prev: i})
			}
		}
	}
	return nil, false
}
