package testexec

import "concat/internal/core/canon"

// resultOptions is the subset of Options that can change a report's
// CONTENTS. Everything else — parallelism, isolation mode, tracing,
// metrics, log sinks, spawn retries, backstops, and the warm-pool knobs
// (PoolSize, BatchSize, WorkerPool) — is determinism-neutral by the
// executor's contract (reports are byte-identical across those knobs),
// so it stays out of the fingerprint and a verdict cached under one
// configuration serves all of them. Seed is excluded too: it is its own
// field in a store key.
type resultOptions struct {
	SkipInvariantChecks bool  `json:"skipInvariantChecks,omitempty"`
	SkipReporter        bool  `json:"skipReporter,omitempty"`
	StepBudget          int64 `json:"stepBudget,omitempty"`
	MaxTranscriptBytes  int64 `json:"maxTranscriptBytes,omitempty"`
	CaseTimeoutNS       int64 `json:"caseTimeoutNs,omitempty"`
}

// ResultFingerprint returns the canonical hash of the result-relevant
// execution options — the options component of a verdict-store key
// (internal/store). Two Options values with the same fingerprint and seed
// produce byte-identical reports for the same suite and component.
//
// The Oracle and Providers fields are NOT fingerprinted: callers that cache
// must either leave them nil or guarantee they are a pure function of the
// component identity already hashed into the key (true for the built-in
// targets' provider maps).
func (o Options) ResultFingerprint() (string, error) {
	return canon.Hash(resultOptions{
		SkipInvariantChecks: o.SkipInvariantChecks,
		SkipReporter:        o.SkipReporter,
		StepBudget:          o.StepBudget,
		MaxTranscriptBytes:  o.MaxTranscriptBytes,
		CaseTimeoutNS:       int64(o.CaseTimeout),
	})
}
