package tspec

import (
	"fmt"
	"strconv"
	"strings"

	"concat/internal/domain"
)

// Parse reads a complete t-spec in the Figure 3 notation and assembles the
// Spec. Parsing stops at the first error; the error carries line/column
// positions. Parse does not validate cross-references — call
// (*Spec).Validate for the semantic checks.
func Parse(src string) (*Spec, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	spec := &Spec{}
	sawClass := false
	for p.tok.kind != tokEOF {
		clause, args, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		switch clause {
		case "Class":
			if sawClass {
				return nil, p.semErrf(args, "duplicate Class clause")
			}
			sawClass = true
			if err := assembleClass(spec, args); err != nil {
				return nil, err
			}
		case "Attribute":
			if err := assembleAttribute(spec, args); err != nil {
				return nil, err
			}
		case "Method":
			if err := assembleMethod(spec, args); err != nil {
				return nil, err
			}
		case "Parameter":
			if err := assembleParameter(spec, args); err != nil {
				return nil, err
			}
		case "Uses":
			if err := assembleUses(spec, args); err != nil {
				return nil, err
			}
		case "Node":
			if err := assembleNode(spec, args); err != nil {
				return nil, err
			}
		case "Edge":
			if err := assembleEdge(spec, args); err != nil {
				return nil, err
			}
		case "Redefined":
			if err := assembleNameList(args, "Redefined", &spec.Redefined); err != nil {
				return nil, err
			}
		case "ModifiedAttributes":
			if err := assembleNameList(args, "ModifiedAttributes", &spec.ModifiedAttributes); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("tspec: %d:%d: unknown clause %q", p.tok.line, p.tok.col, clause)
		}
	}
	if !sawClass {
		return nil, fmt.Errorf("tspec: missing Class clause")
	}
	return spec, nil
}

// parser is a recursive-descent parser over the clause grammar:
//
//	spec   := clause*
//	clause := IDENT '(' arg (',' arg)* ')'
//	arg    := STRING | NUMBER | IDENT | '<empty>' | '[' (arg (',' arg)*)? ']'
type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("tspec: %d:%d: expected %s, found %s %q",
			p.tok.line, p.tok.col, k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// argKind classifies a parsed clause argument.
type argKind int

const (
	argString argKind = iota + 1
	argNumber
	argIdent
	argEmpty
	argList
)

type argValue struct {
	kind    argKind
	str     string // string payload or identifier spelling
	num     float64
	isFloat bool // number literal contained a decimal point
	list    []argValue
	line    int
	col     int
}

func (a argValue) describe() string {
	switch a.kind {
	case argString:
		return fmt.Sprintf("string %q", a.str)
	case argNumber:
		return "number " + strconv.FormatFloat(a.num, 'g', -1, 64)
	case argIdent:
		return "identifier " + a.str
	case argEmpty:
		return "<empty>"
	case argList:
		return "list"
	default:
		return "argument"
	}
}

func (p *parser) parseClause() (string, []argValue, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return "", nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return "", nil, err
	}
	var args []argValue
	if p.tok.kind != tokRParen {
		for {
			a, err := p.parseArg()
			if err != nil {
				return "", nil, err
			}
			args = append(args, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return "", nil, err
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return "", nil, err
	}
	return name.text, args, nil
}

func (p *parser) parseArg() (argValue, error) {
	t := p.tok
	switch t.kind {
	case tokString:
		if err := p.advance(); err != nil {
			return argValue{}, err
		}
		return argValue{kind: argString, str: t.text, line: t.line, col: t.col}, nil
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return argValue{}, fmt.Errorf("tspec: %d:%d: bad number %q: %w", t.line, t.col, t.text, err)
		}
		if err := p.advance(); err != nil {
			return argValue{}, err
		}
		return argValue{
			kind:    argNumber,
			num:     f,
			isFloat: strings.Contains(t.text, "."),
			line:    t.line,
			col:     t.col,
		}, nil
	case tokIdent:
		if err := p.advance(); err != nil {
			return argValue{}, err
		}
		return argValue{kind: argIdent, str: t.text, line: t.line, col: t.col}, nil
	case tokEmpty:
		if err := p.advance(); err != nil {
			return argValue{}, err
		}
		return argValue{kind: argEmpty, line: t.line, col: t.col}, nil
	case tokLBracket:
		if err := p.advance(); err != nil {
			return argValue{}, err
		}
		out := argValue{kind: argList, line: t.line, col: t.col}
		if p.tok.kind != tokRBracket {
			for {
				a, err := p.parseArg()
				if err != nil {
					return argValue{}, err
				}
				out.list = append(out.list, a)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return argValue{}, err
				}
			}
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return argValue{}, err
		}
		return out, nil
	default:
		return argValue{}, fmt.Errorf("tspec: %d:%d: expected argument, found %s", t.line, t.col, t.kind)
	}
}

func (p *parser) semErrf(args []argValue, format string, a ...any) error {
	line, col := p.tok.line, p.tok.col
	if len(args) > 0 {
		line, col = args[0].line, args[0].col
	}
	return fmt.Errorf("tspec: %d:%d: %s", line, col, fmt.Sprintf(format, a...))
}

func semErr(at argValue, format string, a ...any) error {
	return fmt.Errorf("tspec: %d:%d: %s", at.line, at.col, fmt.Sprintf(format, a...))
}

// --- clause assembly ---

// Class('Name', Yes|No, <empty>|'Super', <empty>|'file'|['f1','f2'])
func assembleClass(spec *Spec, args []argValue) error {
	if len(args) != 4 {
		return fmt.Errorf("tspec: Class clause takes 4 arguments, got %d", len(args))
	}
	name, err := wantString(args[0], "class name")
	if err != nil {
		return err
	}
	abstract, err := wantYesNo(args[1], "abstract flag")
	if err != nil {
		return err
	}
	super := ""
	if args[2].kind != argEmpty {
		super, err = wantString(args[2], "superclass name")
		if err != nil {
			return err
		}
	}
	var sources []string
	switch args[3].kind {
	case argEmpty:
	case argString:
		sources = []string{args[3].str}
	case argList:
		for _, a := range args[3].list {
			s, err := wantString(a, "source file")
			if err != nil {
				return err
			}
			sources = append(sources, s)
		}
	default:
		return semErr(args[3], "source files must be <empty>, a string, or a list, got %s", args[3].describe())
	}
	spec.Class = Class{Name: name, Abstract: abstract, Superclass: super, Sources: sources}
	return nil
}

// Attribute('name', <domain...>)
func assembleAttribute(spec *Spec, args []argValue) error {
	if len(args) < 2 {
		return fmt.Errorf("tspec: Attribute clause takes at least 2 arguments, got %d", len(args))
	}
	name, err := wantString(args[0], "attribute name")
	if err != nil {
		return err
	}
	decl, err := parseDomainArgs(args[1:])
	if err != nil {
		return fmt.Errorf("attribute %q: %w", name, err)
	}
	spec.Attributes = append(spec.Attributes, Attribute{Name: name, Domain: decl})
	return nil
}

// Method(mID, 'Name', <empty>|'type', category, nParams)
func assembleMethod(spec *Spec, args []argValue) error {
	if len(args) != 5 {
		return fmt.Errorf("tspec: Method clause takes 5 arguments, got %d", len(args))
	}
	id, err := wantIdent(args[0], "method identifier")
	if err != nil {
		return err
	}
	name, err := wantString(args[1], "method name")
	if err != nil {
		return err
	}
	ret := ""
	if args[2].kind != argEmpty {
		switch args[2].kind {
		case argString:
			ret = args[2].str
		case argIdent:
			ret = args[2].str
		default:
			return semErr(args[2], "return type must be <empty>, an identifier or a string")
		}
	}
	catName, err := wantIdent(args[3], "method category")
	if err != nil {
		return err
	}
	cat, err := ParseCategory(catName)
	if err != nil {
		return semErr(args[3], "%v", err)
	}
	nParams, err := wantInt(args[4], "parameter count")
	if err != nil {
		return err
	}
	spec.Methods = append(spec.Methods, Method{
		ID:             id,
		Name:           name,
		Return:         ret,
		Category:       cat,
		DeclaredParams: int(nParams),
	})
	return nil
}

// Parameter(mID, 'name', <domain...>)
func assembleParameter(spec *Spec, args []argValue) error {
	if len(args) < 3 {
		return fmt.Errorf("tspec: Parameter clause takes at least 3 arguments, got %d", len(args))
	}
	mID, err := wantIdent(args[0], "method identifier")
	if err != nil {
		return err
	}
	name, err := wantString(args[1], "parameter name")
	if err != nil {
		return err
	}
	decl, err := parseDomainArgs(args[2:])
	if err != nil {
		return fmt.Errorf("parameter %q of %s: %w", name, mID, err)
	}
	for i := range spec.Methods {
		if spec.Methods[i].ID == mID {
			spec.Methods[i].Params = append(spec.Methods[i].Params, Param{Name: name, Domain: decl})
			return nil
		}
	}
	return semErr(args[0], "Parameter clause references undeclared method %q", mID)
}

// Uses(mID, ['attr1', 'attr2'])
func assembleUses(spec *Spec, args []argValue) error {
	if len(args) != 2 {
		return fmt.Errorf("tspec: Uses clause takes 2 arguments, got %d", len(args))
	}
	mID, err := wantIdent(args[0], "method identifier")
	if err != nil {
		return err
	}
	var names []string
	if err := assembleNameList(args[1:], "Uses", &names); err != nil {
		return err
	}
	for i := range spec.Methods {
		if spec.Methods[i].ID == mID {
			spec.Methods[i].Uses = append(spec.Methods[i].Uses, names...)
			return nil
		}
	}
	return semErr(args[0], "Uses clause references undeclared method %q", mID)
}

// Node(nID, Yes|No, outDegree, [m1, m2])
func assembleNode(spec *Spec, args []argValue) error {
	if len(args) != 4 {
		return fmt.Errorf("tspec: Node clause takes 4 arguments, got %d", len(args))
	}
	id, err := wantIdent(args[0], "node identifier")
	if err != nil {
		return err
	}
	start, err := wantYesNo(args[1], "start flag")
	if err != nil {
		return err
	}
	outDeg, err := wantInt(args[2], "outgoing edge count")
	if err != nil {
		return err
	}
	if args[3].kind != argList {
		return semErr(args[3], "node methods must be a list, got %s", args[3].describe())
	}
	var methods []string
	for _, a := range args[3].list {
		m, err := wantIdent(a, "method identifier")
		if err != nil {
			return err
		}
		methods = append(methods, m)
	}
	spec.Nodes = append(spec.Nodes, NodeDecl{ID: id, Start: start, OutDeg: int(outDeg), Methods: methods})
	return nil
}

// Edge(from, to)
func assembleEdge(spec *Spec, args []argValue) error {
	if len(args) != 2 {
		return fmt.Errorf("tspec: Edge clause takes 2 arguments, got %d", len(args))
	}
	from, err := wantIdent(args[0], "edge source")
	if err != nil {
		return err
	}
	to, err := wantIdent(args[1], "edge target")
	if err != nil {
		return err
	}
	spec.Edges = append(spec.Edges, EdgeDecl{From: from, To: to})
	return nil
}

// assembleNameList appends the strings/identifiers of a single list argument.
func assembleNameList(args []argValue, clause string, dst *[]string) error {
	if len(args) != 1 || args[0].kind != argList {
		return fmt.Errorf("tspec: %s clause takes a single list argument", clause)
	}
	for _, a := range args[0].list {
		switch a.kind {
		case argString, argIdent:
			*dst = append(*dst, a.str)
		default:
			return semErr(a, "%s entries must be names, got %s", clause, a.describe())
		}
	}
	return nil
}

// parseDomainArgs interprets the domain tail of Attribute and Parameter
// clauses: a type keyword followed by type-specific arguments.
func parseDomainArgs(args []argValue) (DomainDecl, error) {
	kindName, err := wantIdent(args[0], "domain type")
	if err != nil {
		return DomainDecl{}, err
	}
	kind, err := ParseDomainKind(strings.ToLower(kindName))
	if err != nil {
		return DomainDecl{}, semErr(args[0], "%v", err)
	}
	rest := args[1:]
	switch kind {
	case DomRange:
		if len(rest) != 2 {
			return DomainDecl{}, semErr(args[0], "range domain takes lower and upper limits, got %d arguments", len(rest))
		}
		lo, err := wantNumber(rest[0], "lower limit")
		if err != nil {
			return DomainDecl{}, err
		}
		hi, err := wantNumber(rest[1], "upper limit")
		if err != nil {
			return DomainDecl{}, err
		}
		return DomainDecl{
			Kind:  DomRange,
			Lo:    lo.num,
			Hi:    hi.num,
			Float: lo.isFloat || hi.isFloat,
		}, nil
	case DomSet:
		if len(rest) != 1 || rest[0].kind != argList {
			return DomainDecl{}, semErr(args[0], "set domain takes a single list of members")
		}
		var members []domain.Value
		for _, a := range rest[0].list {
			switch a.kind {
			case argNumber:
				if a.isFloat {
					members = append(members, domain.Float(a.num))
				} else {
					members = append(members, domain.Int(int64(a.num)))
				}
			case argString:
				members = append(members, domain.Str(a.str))
			default:
				return DomainDecl{}, semErr(a, "set member must be a number or string, got %s", a.describe())
			}
		}
		return DomainDecl{Kind: DomSet, Members: members}, nil
	case DomString:
		if len(rest) == 1 && rest[0].kind == argList {
			var cands []string
			for _, a := range rest[0].list {
				s, err := wantString(a, "string candidate")
				if err != nil {
					return DomainDecl{}, err
				}
				cands = append(cands, s)
			}
			return DomainDecl{Kind: DomString, Candidates: cands}, nil
		}
		if len(rest) != 2 {
			return DomainDecl{}, semErr(args[0], "string domain takes either a candidate list or min/max lengths")
		}
		minLen, err := wantInt(rest[0], "minimum length")
		if err != nil {
			return DomainDecl{}, err
		}
		maxLen, err := wantInt(rest[1], "maximum length")
		if err != nil {
			return DomainDecl{}, err
		}
		return DomainDecl{Kind: DomString, MinLen: int(minLen), MaxLen: int(maxLen)}, nil
	case DomObject, DomPointer:
		if len(rest) < 1 {
			return DomainDecl{}, semErr(args[0], "%s domain takes a type name", kind)
		}
		typeName, err := wantString(rest[0], "type name")
		if err != nil {
			return DomainDecl{}, err
		}
		decl := DomainDecl{Kind: kind, TypeName: typeName}
		if len(rest) == 2 {
			flag, err := wantIdent(rest[1], "nullable flag")
			if err != nil {
				return DomainDecl{}, err
			}
			if flag != "nullable" {
				return DomainDecl{}, semErr(rest[1], "expected 'nullable', got %q", flag)
			}
			decl.Nullable = true
		} else if len(rest) > 2 {
			return DomainDecl{}, semErr(args[0], "%s domain takes at most a type name and 'nullable'", kind)
		}
		return decl, nil
	case DomBool:
		if len(rest) != 0 {
			return DomainDecl{}, semErr(args[0], "bool domain takes no arguments")
		}
		return DomainDecl{Kind: DomBool}, nil
	default:
		return DomainDecl{}, semErr(args[0], "unsupported domain kind %v", kind)
	}
}

// --- argument coercion helpers ---

func wantString(a argValue, what string) (string, error) {
	if a.kind != argString {
		return "", semErr(a, "%s must be a quoted string, got %s", what, a.describe())
	}
	return a.str, nil
}

func wantIdent(a argValue, what string) (string, error) {
	switch a.kind {
	case argIdent:
		return a.str, nil
	case argString:
		return a.str, nil // tolerate quoted identifiers
	default:
		return "", semErr(a, "%s must be an identifier, got %s", what, a.describe())
	}
}

func wantYesNo(a argValue, what string) (bool, error) {
	s, err := wantIdent(a, what)
	if err != nil {
		return false, err
	}
	switch strings.ToLower(s) {
	case "yes":
		return true, nil
	case "no":
		return false, nil
	default:
		return false, semErr(a, "%s must be Yes or No, got %q", what, s)
	}
}

func wantNumber(a argValue, what string) (argValue, error) {
	if a.kind != argNumber {
		return argValue{}, semErr(a, "%s must be a number, got %s", what, a.describe())
	}
	return a, nil
}

func wantInt(a argValue, what string) (int64, error) {
	if a.kind != argNumber || a.isFloat {
		return 0, semErr(a, "%s must be an integer, got %s", what, a.describe())
	}
	return int64(a.num), nil
}
