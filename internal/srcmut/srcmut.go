// Package srcmut is the source-level counterpart of the in-process mutation
// engine: it applies the paper's interface-mutation operators (Table 1) to
// real Go source files, producing one mutant source per fault, and verifies
// with go/types that each mutant "compiled cleanly" — the paper's authors
// created every C++ mutant as a separate class and compiled it individually.
//
// Mutation points are uses of non-interface variables inside a method body:
// local variables (parameters are interface variables and are excluded, per
// Delamaro's fault model). Replacements come from
//
//   - L(R2): other locals of the method with an assignable type (IndVarRepLoc);
//   - G(R2): receiver fields the method uses (IndVarRepGlob);
//   - E(R2): package-level variables and receiver fields the method does NOT
//     use (IndVarRepExt);
//   - RC: required constants — 0, 1, -1, the extreme integers, nil
//     (IndVarRepReq);
//   - bitwise negation of the use itself (IndVarBitNeg).
//
// Mutants are produced by splicing replacement text at the use's byte range,
// which guarantees the change is exactly one expression wide.
package srcmut

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"concat/internal/mutation"
)

// Mutant is one source-level interface mutant.
type Mutant struct {
	// ID is "<method>/<var>@<line>:<col>:<operator>(<replacement>)".
	ID string
	// Method is the enclosing function or method name.
	Method string
	// Operator is the Table 1 operator applied.
	Operator mutation.Operator
	// Var is the non-interface variable whose use was mutated.
	Var string
	// Replacement is the spliced expression text.
	Replacement string
	// Position locates the mutated use in the original source.
	Position token.Position
	// Source is the complete mutant file content.
	Source []byte
}

// Options configure mutant generation.
type Options struct {
	// Methods restricts mutation to the named functions/methods; empty
	// means every function in the file.
	Methods []string
	// Operators restricts the operator set; empty means all of Table 1.
	Operators []mutation.Operator
	// MaxPerSite caps the replacement candidates used per use site and
	// operator (0 = unlimited) to bound the mutant explosion on large
	// methods.
	MaxPerSite int
}

// MutateFile generates the mutants of one Go source file. The file must be
// self-contained enough to type-check (stdlib imports are resolved with the
// source importer).
func MutateFile(filename string, src []byte, opts Options) ([]Mutant, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("srcmut: parsing %s: %w", filename, err)
	}
	info := &types.Info{
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(file.Name.Name, fset, []*ast.File{file}, info)
	if err != nil {
		return nil, fmt.Errorf("srcmut: type-checking %s: %w", filename, err)
	}

	ops := opts.Operators
	if len(ops) == 0 {
		ops = mutation.AllOperators
	}
	methodFilter := map[string]bool{}
	for _, m := range opts.Methods {
		methodFilter[m] = true
	}

	var out []Mutant
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if len(methodFilter) > 0 && !methodFilter[fn.Name.Name] {
			continue
		}
		ms, err := mutateFunc(fset, file, pkg, info, fn, src, ops, opts.MaxPerSite)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// funcContext gathers the variable universe of one function: its locals,
// the receiver's fields partitioned into used/unused, and package-level
// variables partitioned the same way.
type funcContext struct {
	fn         *ast.FuncDecl
	pkg        *types.Package
	locals     []localVar   // non-parameter locals, declaration order
	fieldsUsed []fieldRef   // receiver fields used in the body (G)
	fieldsExt  []fieldRef   // receiver fields NOT used in the body (E)
	pkgUsed    []*types.Var // package vars used in the body (G-like; kept in E per def)
	pkgExt     []*types.Var // package vars not used in the body (E)
}

// localVar pairs a local variable with the end position of its defining
// statement: a replacement may only reference the local at points after the
// whole definition (Go forbids the C++ pattern of referencing a variable
// inside its own initializer).
type localVar struct {
	v      *types.Var
	defEnd token.Pos
}

type fieldRef struct {
	recv  string // receiver identifier text
	field *types.Var
}

func buildContext(pkg *types.Package, info *types.Info, fn *ast.FuncDecl) *funcContext {
	ctx := &funcContext{fn: fn, pkg: pkg}

	params := map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}

	// Locals: every variable defined inside the body, tagged with the end
	// of its defining statement.
	seenLocal := map[*types.Var]bool{}
	var nodeStack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			nodeStack = nodeStack[:len(nodeStack)-1]
			return true
		}
		nodeStack = append(nodeStack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := info.Defs[id].(*types.Var); ok && !params[obj] && !seenLocal[obj] {
			seenLocal[obj] = true
			end := id.End()
			for i := len(nodeStack) - 1; i >= 0; i-- {
				if _, isStmt := nodeStack[i].(ast.Stmt); isStmt {
					end = nodeStack[i].End()
					break
				}
			}
			ctx.locals = append(ctx.locals, localVar{v: obj, defEnd: end})
		}
		return true
	})

	// Receiver fields: used vs unused, when the receiver is a named struct.
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvName := fn.Recv.List[0].Names[0].Name
		if recvName != "_" {
			usedFields := map[*types.Var]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if base, ok := sel.X.(*ast.Ident); ok && base.Name == recvName {
					if f, ok := info.Uses[sel.Sel].(*types.Var); ok && f.IsField() {
						usedFields[f] = true
					}
				}
				return true
			})
			for _, f := range structFields(info, fn) {
				ref := fieldRef{recv: recvName, field: f}
				if usedFields[f] {
					ctx.fieldsUsed = append(ctx.fieldsUsed, ref)
				} else {
					ctx.fieldsExt = append(ctx.fieldsExt, ref)
				}
			}
		}
	}

	// Package-level variables: used vs unused in this function.
	usedPkg := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok && obj.Parent() == pkg.Scope() {
			usedPkg[obj] = true
		}
		return true
	})
	names := pkg.Scope().Names()
	sort.Strings(names)
	for _, name := range names {
		v, ok := pkg.Scope().Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		if usedPkg[v] {
			ctx.pkgUsed = append(ctx.pkgUsed, v)
		} else {
			ctx.pkgExt = append(ctx.pkgExt, v)
		}
	}
	return ctx
}

// structFields returns the receiver struct's fields in declaration order.
func structFields(info *types.Info, fn *ast.FuncDecl) []*types.Var {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return nil
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		out = append(out, st.Field(i))
	}
	return out
}

// useSite is one mutable use of a non-interface (local) variable.
type useSite struct {
	id  *ast.Ident
	obj *types.Var
	// totalUses counts the variable's rvalue uses in the whole body. In Go
	// (unlike C++) a local with no remaining use does not compile, so a
	// replacement operator may only fire on sites whose variable has other
	// uses — the Go analog of the paper discarding mutants that fail to
	// compile.
	totalUses int
}

// collectUseSites finds rvalue uses of locals inside the body: identifiers
// resolving to non-parameter locals that are not assignment targets.
func collectUseSites(info *types.Info, fn *ast.FuncDecl, locals []localVar) []useSite {
	localSet := map[*types.Var]bool{}
	for _, l := range locals {
		localSet[l.v] = true
	}
	lhs := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, e := range st.Lhs {
				if id, ok := e.(*ast.Ident); ok {
					lhs[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok {
				lhs[id] = true
			}
		case *ast.RangeStmt:
			if id, ok := st.Key.(*ast.Ident); ok {
				lhs[id] = true
			}
			if id, ok := st.Value.(*ast.Ident); ok {
				lhs[id] = true
			}
		}
		return true
	})
	uses := map[*types.Var]int{}
	var out []useSite
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhs[id] {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || !localSet[obj] {
			return true
		}
		uses[obj]++
		out = append(out, useSite{id: id, obj: obj})
		return true
	})
	for i := range out {
		out[i].totalUses = uses[out[i].obj]
	}
	return out
}

func mutateFunc(fset *token.FileSet, file *ast.File, pkg *types.Package, info *types.Info,
	fn *ast.FuncDecl, src []byte, ops []mutation.Operator, maxPerSite int) ([]Mutant, error) {

	ctx := buildContext(pkg, info, fn)
	sites := collectUseSites(info, fn, ctx.locals)

	var out []Mutant
	for _, site := range sites {
		for _, op := range ops {
			repls := replacements(ctx, site, op)
			if maxPerSite > 0 && len(repls) > maxPerSite {
				repls = repls[:maxPerSite]
			}
			for _, repl := range repls {
				m, err := splice(fset, fn, site, op, repl, src)
				if err != nil {
					return nil, err
				}
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// replacements computes the candidate replacement expressions for one use
// site under one operator, filtered to type-assignable candidates so the
// mutant still compiles.
func replacements(ctx *funcContext, site useSite, op mutation.Operator) []string {
	t := site.obj.Type()
	// Replacement operators remove this use of the variable; if it is the
	// variable's only use the declaration becomes unused and the mutant
	// cannot compile in Go. BitNeg keeps the use, so it is exempt.
	if op != mutation.OpBitNeg && site.totalUses <= 1 {
		return nil
	}
	switch op {
	case mutation.OpBitNeg:
		if isInteger(t) {
			return []string{"^" + site.id.Name}
		}
		return nil
	case mutation.OpRepLoc:
		var out []string
		for _, l := range ctx.locals {
			if l.v == site.obj {
				continue
			}
			// The candidate's whole defining statement must precede the use
			// and its scope must cover the use point, or the splice
			// references an undefined (or self-referential) name.
			if l.defEnd > site.id.Pos() || l.v.Parent() == nil || !l.v.Parent().Contains(site.id.Pos()) {
				continue
			}
			if types.AssignableTo(l.v.Type(), t) {
				out = append(out, l.v.Name())
			}
		}
		return out
	case mutation.OpRepGlob:
		var out []string
		for _, f := range ctx.fieldsUsed {
			if types.AssignableTo(f.field.Type(), t) {
				out = append(out, f.recv+"."+f.field.Name())
			}
		}
		return out
	case mutation.OpRepExt:
		var out []string
		for _, f := range ctx.fieldsExt {
			if types.AssignableTo(f.field.Type(), t) {
				out = append(out, f.recv+"."+f.field.Name())
			}
		}
		for _, v := range ctx.pkgExt {
			if types.AssignableTo(v.Type(), t) {
				out = append(out, v.Name())
			}
		}
		return out
	case mutation.OpRepReq:
		// Constants are wrapped in a function literal returning the site's
		// exact type: the replacement is then a correctly typed,
		// non-constant expression, so it survives Go's compile-time
		// constant checks (index bounds, overflow) the way a C++ constant
		// would — failing at run time instead.
		// Qualify imported types with their package name; same-package
		// types stay bare (the mutant lives in the same package).
		tn := types.TypeString(t, func(p *types.Package) string {
			if p == ctx.pkg {
				return ""
			}
			return p.Name()
		})
		wrap := func(lit string) string {
			return "func() " + tn + " { return " + lit + " }()"
		}
		switch {
		case isInteger(t):
			out := []string{wrap("0"), wrap("1"), wrap("-1")}
			if hasWideIntRange(t) {
				out = append(out, wrap("9223372036854775807"), wrap("-9223372036854775807-1"))
			}
			return out
		case isFloat(t):
			return []string{wrap("0"), wrap("1"), wrap("-1")}
		case isString(t):
			return []string{wrap(`""`)}
		case isPointerLike(t):
			return []string{wrap("nil")}
		case isBool(t):
			return []string{wrap("true"), wrap("false")}
		default:
			return nil
		}
	default:
		return nil
	}
}

func basicInfo(t types.Type) types.BasicInfo {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	return b.Info()
}

func isInteger(t types.Type) bool { return basicInfo(t)&types.IsInteger != 0 }

// hasWideIntRange reports whether the MAXINT/MININT required constants of
// the paper fit the site's integer type (int and int64 on a 64-bit target).
func hasWideIntRange(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Int64:
		return true
	default:
		return false
	}
}
func isFloat(t types.Type) bool  { return basicInfo(t)&types.IsFloat != 0 }
func isString(t types.Type) bool { return basicInfo(t)&types.IsString != 0 }
func isBool(t types.Type) bool   { return basicInfo(t)&types.IsBoolean != 0 }
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// splice produces the mutant source by replacing the use's byte range.
func splice(fset *token.FileSet, fn *ast.FuncDecl, site useSite,
	op mutation.Operator, repl string, src []byte) (Mutant, error) {

	f := fset.File(site.id.Pos())
	if f == nil {
		return Mutant{}, errors.New("srcmut: identifier position outside the file set")
	}
	start := f.Offset(site.id.Pos())
	end := f.Offset(site.id.End())
	if start < 0 || end > len(src) || start >= end {
		return Mutant{}, fmt.Errorf("srcmut: bad splice range [%d,%d)", start, end)
	}
	// Parenthesize to keep precedence intact regardless of context.
	text := "(" + repl + ")"
	mutated := make([]byte, 0, len(src)+len(text))
	mutated = append(mutated, src[:start]...)
	mutated = append(mutated, text...)
	mutated = append(mutated, src[end:]...)

	pos := fset.Position(site.id.Pos())
	return Mutant{
		ID: fmt.Sprintf("%s/%s@%d:%d:%s(%s)",
			fn.Name.Name, site.id.Name, pos.Line, pos.Column, op, repl),
		Method:      fn.Name.Name,
		Operator:    op,
		Var:         site.id.Name,
		Replacement: repl,
		Position:    pos,
		Source:      mutated,
	}, nil
}

// TypeCheck verifies the mutant source still compiles ("all faulty classes
// compiled cleanly"). It returns nil when the mutant type-checks.
func (m Mutant) TypeCheck(filename string) error {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, m.Source, 0)
	if err != nil {
		return fmt.Errorf("srcmut: mutant %s does not parse: %w", m.ID, err)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check(file.Name.Name, fset, []*ast.File{file}, nil); err != nil {
		return fmt.Errorf("srcmut: mutant %s does not type-check: %w", m.ID, err)
	}
	return nil
}

// FileName suggests a file name for the mutant ("mutant_0042.go" style).
func (m Mutant) FileName(ordinal int) string {
	return "mutant_" + strconv.Itoa(ordinal) + ".go"
}
