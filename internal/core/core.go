// Package core ties the substrates into the paper's central abstraction: a
// self-testable component, i.e. a component that travels with its test
// specification and built-in test capabilities, plus the consumer-side
// operations of §3.1 — generate test cases from the embedded t-spec, put the
// component in test mode, execute, analyze. It also hosts the registry of
// the built-in study subjects so the CLI and the experiment harness address
// them by name.
package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"

	"concat/internal/analysis"
	"concat/internal/component"
	"concat/internal/components/account"
	"concat/internal/components/oblist"
	"concat/internal/components/ordersys"
	"concat/internal/components/product"
	"concat/internal/components/sortlist"
	"concat/internal/components/stack"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/history"
	"concat/internal/mutation"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

// Component is a self-testable component from the consumer's point of view:
// the factory (implementation + embedded t-spec + BIT interface) plus the
// provider map that completes structured parameters.
type Component struct {
	Factory   component.Factory
	Providers map[string]domain.Provider
}

// Spec returns the embedded test specification.
func (c *Component) Spec() *tspec.Spec { return c.Factory.Spec() }

// GenerateSuite runs the Driver Generator on the embedded t-spec.
func (c *Component) GenerateSuite(opts driver.Options) (*driver.Suite, error) {
	return driver.Generate(c.Spec(), opts)
}

// RunSuite executes a suite against the component.
func (c *Component) RunSuite(s *driver.Suite, opts testexec.Options) (*testexec.Report, error) {
	if opts.Providers == nil {
		opts.Providers = c.Providers
	}
	return testexec.Run(s, c.Factory, opts)
}

// SelfTest is the consumer workflow of §3.1 in one call: generate test
// cases from the embedded t-spec, execute them in test mode, and report.
func (c *Component) SelfTest(gen driver.Options, exec testexec.Options) (*driver.Suite, *testexec.Report, error) {
	suite, err := c.GenerateSuite(gen)
	if err != nil {
		return nil, nil, fmt.Errorf("core: self-test of %q: %w", c.Factory.Name(), err)
	}
	report, err := c.RunSuite(suite, exec)
	if err != nil {
		return suite, nil, fmt.Errorf("core: self-test of %q: %w", c.Factory.Name(), err)
	}
	return suite, report, nil
}

// History builds the component's testing history from a generated suite.
func (c *Component) History(s *driver.Suite) *history.History {
	return history.Build(s)
}

// DeriveSubclass applies the hierarchical incremental technique: the child
// component reuses the parent's test cases where the paper's rule allows.
func DeriveSubclass(parent, child *Component, parentSuite *driver.Suite, opts driver.Options) (*history.DerivedSuite, error) {
	return history.Derive(parent.Spec(), child.Spec(), parentSuite, opts)
}

// Target describes one built-in study subject: how to build a factory
// (optionally with a mutation engine attached), its instrumentation sites
// and the methods the paper's experiments mutate.
type Target struct {
	Name string
	// New builds a factory; eng may be nil for plain testing.
	New func(eng *mutation.Engine) *Component
	// Sites is the component's mutation site table (may be empty).
	Sites []mutation.Site
	// ExperimentMethods are the methods the paper's experiments mutate.
	ExperimentMethods []string
}

// Targets returns the built-in study subjects, keyed by component name.
func Targets() map[string]Target {
	return map[string]Target{
		account.Name: {
			Name: account.Name,
			New: func(eng *mutation.Engine) *Component {
				if eng == nil {
					return &Component{Factory: account.NewFactory()}
				}
				return &Component{Factory: account.NewFactoryWithEngine(eng)}
			},
			Sites:             account.Sites(),
			ExperimentMethods: []string{"Withdraw"},
		},
		oblist.Name: {
			Name: oblist.Name,
			New: func(eng *mutation.Engine) *Component {
				if eng == nil {
					return &Component{Factory: oblist.NewFactory()}
				}
				return &Component{Factory: oblist.NewFactoryWithEngine(eng)}
			},
			Sites:             oblist.Sites(),
			ExperimentMethods: []string{"AddHead", "RemoveAt", "RemoveHead"},
		},
		sortlist.Name: {
			Name: sortlist.Name,
			New: func(eng *mutation.Engine) *Component {
				if eng == nil {
					return &Component{Factory: sortlist.NewFactory()}
				}
				return &Component{Factory: sortlist.NewFactoryWithEngine(eng)}
			},
			// The sortable list inherits the base sites too: experiment 2
			// mutates base methods while running subclass objects.
			Sites:             append(oblist.Sites(), sortlist.Sites()...),
			ExperimentMethods: []string{"Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"},
		},
		product.Name: {
			Name: product.Name,
			New: func(eng *mutation.Engine) *Component {
				f := product.NewFactory()
				return &Component{Factory: f, Providers: f.Providers()}
			},
		},
		"StackOfInt": {
			Name: "StackOfInt",
			New: func(eng *mutation.Engine) *Component {
				f, err := stack.IntStack()
				if err != nil {
					panic(err) // static instantiation; failure is a programming error
				}
				return &Component{Factory: f}
			},
		},
		"StackOfString": {
			Name: "StackOfString",
			New: func(eng *mutation.Engine) *Component {
				f, err := stack.StringStack()
				if err != nil {
					panic(err) // static instantiation; failure is a programming error
				}
				return &Component{Factory: f}
			},
		},
		ordersys.Name: {
			Name: ordersys.Name,
			New: func(eng *mutation.Engine) *Component {
				if eng == nil {
					return &Component{Factory: ordersys.NewFactory()}
				}
				return &Component{Factory: ordersys.NewFactoryWithEngine(eng)}
			},
			Sites:             ordersys.Sites(),
			ExperimentMethods: []string{"Checkout"},
		},
	}
}

// LookupTarget resolves a built-in component by name.
func LookupTarget(name string) (Target, error) {
	t, ok := Targets()[name]
	if !ok {
		return Target{}, fmt.Errorf("core: unknown component %q (run `concat list` for the built-ins)", name)
	}
	return t, nil
}

// Registry returns a component.Registry with every built-in factory
// registered (no mutation engines attached).
func Registry() (*component.Registry, error) {
	reg := component.NewRegistry()
	for _, t := range Targets() {
		if err := reg.Register(t.New(nil).Factory); err != nil {
			return nil, fmt.Errorf("core: building registry: %w", err)
		}
	}
	return reg, nil
}

// MutationOptions tune a mutation campaign beyond the defaults.
type MutationOptions struct {
	// Exec configures suite execution for the reference run and every mutant
	// run: isolation mode, step budgets, transcript caps, timeouts. The
	// Oracle is managed by the analysis; Providers are filled from the
	// target when unset.
	Exec testexec.Options
	// Parallelism overrides the mutant-worker count; zero means GOMAXPROCS.
	Parallelism int
	// Store, when enabled, caches mutant verdicts by content address so a
	// warm re-run of the same campaign re-executes only mutants whose
	// inputs (spec, suite, mutant, seed, result-relevant options) changed.
	Store store.Backend
	// ShardIndex/ShardCount restrict the campaign to one shard of the
	// deterministic mutant enumeration: only mutants whose sorted index is
	// congruent to ShardIndex mod ShardCount are executed. Shards publish
	// verdicts into a shared Store, and a subsequent unsharded warm run
	// reassembles the full campaign byte-identically. ShardCount <= 1 runs
	// everything; an empty shard (more shards than mutants) is legal.
	ShardIndex int
	ShardCount int
}

// MutationRun is the one-call mutation analysis workflow used by the CLI
// and the experiment harness: build an engine over the target's sites,
// enumerate mutants of the requested methods (all operators), and analyze
// the suite.
func MutationRun(targetName string, suite *driver.Suite, methods []string, progress io.Writer) (*analysis.Result, error) {
	return MutationRunOpts(targetName, suite, methods, progress, MutationOptions{})
}

// MutationRunOpts is MutationRun with explicit campaign options — notably
// testexec.IsolateSubprocess, under which every case (reference and mutant)
// executes in a `concat run-case` child so genuinely fatal mutants are
// recorded as crash kills instead of killing the campaign.
func MutationRunOpts(targetName string, suite *driver.Suite, methods []string, progress io.Writer, o MutationOptions) (*analysis.Result, error) {
	t, err := LookupTarget(targetName)
	if err != nil {
		return nil, err
	}
	if len(t.Sites) == 0 {
		return nil, fmt.Errorf("core: component %q has no mutation instrumentation", targetName)
	}
	eng := mutation.NewEngine()
	for _, s := range t.Sites {
		if err := eng.RegisterSite(s); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	comp := t.New(eng)
	if len(methods) == 0 {
		methods = t.ExperimentMethods
	}
	mutants := eng.Enumerate(nil, methods)
	if len(mutants) == 0 {
		return nil, errors.New("core: no mutants enumerable for the requested methods")
	}
	if o.ShardCount > 1 {
		if o.ShardIndex < 0 || o.ShardIndex >= o.ShardCount {
			return nil, fmt.Errorf("core: shard %d out of range for %d shards", o.ShardIndex, o.ShardCount)
		}
		shard := mutants[:0:0]
		for i, m := range mutants {
			if i%o.ShardCount == o.ShardIndex {
				shard = append(shard, m)
			}
		}
		mutants = shard
	}
	exec := o.Exec
	if exec.Providers == nil {
		exec.Providers = comp.Providers
	}
	parallelism := o.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	a := &analysis.Analysis{
		Engine:      eng,
		Factory:     comp.Factory,
		Suite:       suite,
		Exec:        exec,
		Progress:    progress,
		Parallelism: parallelism,
		NewFactory: func(e *mutation.Engine) component.Factory {
			return t.New(e).Factory
		},
		Store: o.Store,
	}
	return a.Run(mutants)
}
