// Package cover measures what a test run actually exercised, against the
// model it was generated from: which TFM transactions completed, which
// nodes and edges were traversed and how often, and which BIT assertion
// sites the partial oracle evaluated. The paper's Driver Generator promises
// the transaction coverage criterion (§3.4.1); this package is the check on
// that promise — a generated suite that executes cleanly must measure 100%
// transaction coverage, and anything less names the transactions it missed.
//
// Coverage is computed after the fact from three deterministic inputs — the
// TFM graph, the suite, and the executed report — never by instrumenting
// the executor. A case's calls align one-to-one with its transaction path,
// so the executed call count (read from the transcript for failed cases)
// projects directly onto node and edge hits. That makes every number here a
// pure function of the report: serial, parallel, traced, isolated and
// cache-warmed runs produce byte-identical coverage.
package cover

import (
	"fmt"
	"sort"
	"strings"

	"concat/internal/bit"
	"concat/internal/driver"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

// CaseCoverage is one test case's execution footprint.
type CaseCoverage struct {
	ID          string `json:"id"`
	Transaction string `json:"transaction"`
	Outcome     string `json:"outcome"`
	// Calls is how many of the case's calls actually executed (all of them
	// for completed cases; a transcript-derived prefix for failed ones).
	Calls int `json:"calls"`
	// Completed: the case ran its whole transaction birth-to-death. Passing
	// cases complete by definition; output-diff cases also ran everything
	// (the diff is an oracle verdict, not an execution failure).
	Completed bool `json:"completed"`
}

// TransactionCoverage aggregates the cases exercising one transaction.
type TransactionCoverage struct {
	Key       string `json:"key"`
	Cases     int    `json:"cases"`
	Completed int    `json:"completed"`
}

// NodeCoverage is a TFM node's hit count; 0-hit nodes are listed too, so
// the artifact names its coverage holes.
type NodeCoverage struct {
	ID   string `json:"id"`
	Hits int64  `json:"hits"`
}

// EdgeCoverage is a TFM edge's hit count, 0-hit edges included.
type EdgeCoverage struct {
	From string `json:"from"`
	To   string `json:"to"`
	Hits int64  `json:"hits"`
}

// SuiteCoverage is the complete coverage record of one executed suite.
type SuiteCoverage struct {
	Component string `json:"component"`
	Criterion string `json:"criterion,omitempty"`
	Seed      int64  `json:"seed"`

	Cases        []CaseCoverage        `json:"cases"`
	Transactions []TransactionCoverage `json:"transactions"`
	Nodes        []NodeCoverage        `json:"nodes,omitempty"`
	Edges        []EdgeCoverage        `json:"edges,omitempty"`

	// TransactionsCovered counts distinct suite transactions with at least
	// one completed case; TransactionsTotal is the distinct transactions the
	// suite targets. Node/edge totals come from the full graph, so the
	// denominators are the model, not the suite.
	TransactionsCovered int `json:"transactionsCovered"`
	TransactionsTotal   int `json:"transactionsTotal"`
	NodesCovered        int `json:"nodesCovered"`
	NodesTotal          int `json:"nodesTotal"`
	EdgesCovered        int `json:"edgesCovered"`
	EdgesTotal          int `json:"edgesTotal"`

	// AssertionSites is the suite's BIT oracle telemetry
	// (testexec.Report.BITSites): which assertion sites the partial oracle
	// evaluated, and how often they were violated.
	AssertionSites []bit.SiteRecord `json:"assertionSites,omitempty"`
}

// TransactionPercent returns transaction coverage as a percentage (100 for
// an empty suite: there was nothing to cover).
func (s *SuiteCoverage) TransactionPercent() float64 {
	if s.TransactionsTotal == 0 {
		return 100
	}
	return 100 * float64(s.TransactionsCovered) / float64(s.TransactionsTotal)
}

// Summary renders the one-line coverage reading used by reports and the
// campaign service.
func (s *SuiteCoverage) Summary() string {
	return fmt.Sprintf("coverage: transactions %d/%d (%.1f%%), nodes %d/%d, edges %d/%d",
		s.TransactionsCovered, s.TransactionsTotal, s.TransactionPercent(),
		s.NodesCovered, s.NodesTotal, s.EdgesCovered, s.EdgesTotal)
}

// NodeHits rebuilds the node hit map for heatmap rendering.
func (s *SuiteCoverage) NodeHits() map[tfm.NodeID]int64 {
	out := make(map[tfm.NodeID]int64, len(s.Nodes))
	for _, n := range s.Nodes {
		out[tfm.NodeID(n.ID)] = n.Hits
	}
	return out
}

// EdgeHits rebuilds the edge hit map for heatmap rendering.
func (s *SuiteCoverage) EdgeHits() map[tfm.Edge]int64 {
	out := make(map[tfm.Edge]int64, len(s.Edges))
	for _, e := range s.Edges {
		out[tfm.Edge{From: tfm.NodeID(e.From), To: tfm.NodeID(e.To)}] = e.Hits
	}
	return out
}

// executedCalls reports how many of a case's calls actually ran. A
// completed case ran them all. For a failed case the transcript is the
// ground truth: the executor writes exactly one NEW/CALL/DESTROY line per
// dispatched call before the failure stopped the case. (The REPORT dump
// only appears after every call completed, so the prefix count never
// overshoots; it is clamped anyway for robustness against truncation.)
func executedCalls(tc driver.TestCase, res testexec.CaseResult) int {
	if completed(res.Outcome) {
		return len(tc.Calls)
	}
	n := 0
	for _, line := range strings.Split(res.Transcript, "\n") {
		if strings.HasPrefix(line, "NEW ") ||
			strings.HasPrefix(line, "CALL ") ||
			strings.HasPrefix(line, "DESTROY ") {
			n++
		}
	}
	if n > len(tc.Calls) {
		n = len(tc.Calls)
	}
	return n
}

// completed: the outcome means the case executed its full transaction.
func completed(o testexec.Outcome) bool {
	return o == testexec.OutcomePass || o == testexec.OutcomeOutputDiff
}

// Compute derives the suite's coverage from the model it was generated
// against and the executed report. Every case in the suite must have a
// result in the report (the executor guarantees this even for crashed or
// timed-out cases).
func Compute(g *tfm.Graph, suite *driver.Suite, rep *testexec.Report) (*SuiteCoverage, error) {
	if suite == nil || rep == nil {
		return nil, fmt.Errorf("cover: nil suite or report")
	}
	if suite.Component != rep.Component {
		return nil, fmt.Errorf("cover: suite is for %q but report is for %q", suite.Component, rep.Component)
	}
	sc := &SuiteCoverage{
		Component: suite.Component,
		Criterion: suite.Criterion,
		Seed:      suite.Seed,
	}
	nodeHits := make(map[tfm.NodeID]int64)
	edgeHits := make(map[tfm.Edge]int64)
	txByKey := make(map[string]*TransactionCoverage)
	for _, tc := range suite.Cases {
		res, ok := rep.Result(tc.ID)
		if !ok {
			return nil, fmt.Errorf("cover: report has no result for case %s", tc.ID)
		}
		ran := executedCalls(tc, res)
		done := completed(res.Outcome)
		sc.Cases = append(sc.Cases, CaseCoverage{
			ID:          tc.ID,
			Transaction: tc.Transaction,
			Outcome:     res.Outcome.String(),
			Calls:       ran,
			Completed:   done,
		})
		tx := txByKey[tc.Transaction]
		if tx == nil {
			tx = &TransactionCoverage{Key: tc.Transaction}
			txByKey[tc.Transaction] = tx
		}
		tx.Cases++
		if done {
			tx.Completed++
		}
		// Calls align 1:1 with path nodes, so the executed prefix is the
		// traversed prefix of the transaction path.
		steps := ran
		if steps > len(tc.Path) {
			steps = len(tc.Path)
		}
		for i := 0; i < steps; i++ {
			nodeHits[tfm.NodeID(tc.Path[i])]++
			if i > 0 {
				edgeHits[tfm.Edge{From: tfm.NodeID(tc.Path[i-1]), To: tfm.NodeID(tc.Path[i])}]++
			}
		}
	}

	keys := make([]string, 0, len(txByKey))
	for k := range txByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tx := txByKey[k]
		sc.Transactions = append(sc.Transactions, *tx)
		if tx.Completed > 0 {
			sc.TransactionsCovered++
		}
	}
	sc.TransactionsTotal = len(keys)

	if g != nil {
		for _, n := range g.Nodes() {
			h := nodeHits[n.ID]
			sc.Nodes = append(sc.Nodes, NodeCoverage{ID: string(n.ID), Hits: h})
			if h > 0 {
				sc.NodesCovered++
			}
		}
		sc.NodesTotal = g.NumNodes()
		edges := g.Edges()
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			h := edgeHits[e]
			sc.Edges = append(sc.Edges, EdgeCoverage{From: string(e.From), To: string(e.To), Hits: h})
			if h > 0 {
				sc.EdgesCovered++
			}
		}
		sc.EdgesTotal = g.NumEdges()
	}

	sc.AssertionSites = rep.BITSites
	return sc, nil
}
