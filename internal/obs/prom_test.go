package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusCountersAndLabels(t *testing.T) {
	m := NewMetrics()
	m.Inc("case.outcome.pass", 3)
	m.Inc("case.outcome.assertion-violation", 1)
	m.Inc("mutant.kill.crash", 2)
	m.Inc("job.outcome.done", 4)
	m.Inc("job.outcome.quarantined", 1)
	m.Inc("isolation.spawns", 5)
	snap := m.Snapshot()
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE concat_case_outcome_total counter",
		`concat_case_outcome_total{outcome="pass"} 3`,
		`concat_case_outcome_total{outcome="assertion-violation"} 1`,
		`concat_mutant_kills_total{reason="crash"} 2`,
		`concat_job_outcome_total{state="done"} 4`,
		`concat_job_outcome_total{state="quarantined"} 1`,
		"concat_isolation_spawns_total 5",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
	// One TYPE header per family, even with several labelled series.
	if got := strings.Count(out, "# TYPE concat_case_outcome_total"); got != 1 {
		t.Errorf("TYPE header for outcome family appears %d times", got)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	m := NewMetrics()
	m.Observe("mutant.kill-latency.IndVarBitNeg", "m1", 50*time.Microsecond)
	m.Observe("mutant.kill-latency.IndVarBitNeg", "m2", 500*time.Microsecond)
	m.Observe("mutant.kill-latency.IndVarBitNeg", "m3", 2*time.Second)
	snap := m.Snapshot()
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		"# TYPE concat_mutant_kill_latency_seconds histogram",
		`concat_mutant_kill_latency_seconds_bucket{operator="IndVarBitNeg",le="0.0001"} 1`,
		`concat_mutant_kill_latency_seconds_bucket{operator="IndVarBitNeg",le="0.001"} 2`,
		`concat_mutant_kill_latency_seconds_bucket{operator="IndVarBitNeg",le="100"} 3`,
		`concat_mutant_kill_latency_seconds_bucket{operator="IndVarBitNeg",le="+Inf"} 3`,
		`concat_mutant_kill_latency_seconds_count{operator="IndVarBitNeg"} 3`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
	// _sum is in seconds: 0.00005 + 0.0005 + 2 = 2.00055.
	if !strings.Contains(out, `concat_mutant_kill_latency_seconds_sum{operator="IndVarBitNeg"} 2.00055`) {
		t.Errorf("sum not converted to seconds:\n%s", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() string {
		m := NewMetrics()
		m.Inc("case.outcome.pass", 1)
		m.Inc("mutant.kill.crash", 1)
		m.Inc("store.hits", 7)
		m.Observe("suite.duration", "s", time.Millisecond)
		snap := m.Snapshot()
		var b strings.Builder
		if err := snap.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("identical snapshots rendered differently:\n%s\nvs\n%s", a, b)
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var b strings.Builder
	snap := NewMetrics().Snapshot()
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", b.String())
	}
}

func TestPromSanitize(t *testing.T) {
	if got := promSanitize("suite.duration-us/total"); got != "suite_duration_us_total" {
		t.Errorf("promSanitize = %q", got)
	}
}
