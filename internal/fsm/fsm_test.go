package fsm

import (
	"strings"
	"testing"

	"concat/internal/components/oblist"
	"concat/internal/testexec"
)

func tiny(t *testing.T) *Machine {
	t.Helper()
	m := New("Tiny", "a")
	for _, tr := range []Transition{
		{From: "a", Method: "go", To: "b"},
		{From: "b", Method: "back", To: "a"},
		{From: "b", Method: "loop", To: "b"},
	} {
		if err := m.AddTransition(tr); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestMachineBasics(t *testing.T) {
	m := tiny(t)
	if m.Name() != "Tiny" || m.Initial() != "a" {
		t.Errorf("machine header = %q/%q", m.Name(), m.Initial())
	}
	if m.NumStates() != 2 || m.NumTransitions() != 3 {
		t.Errorf("machine size = %d states, %d transitions", m.NumStates(), m.NumTransitions())
	}
	if got := m.States(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("States() = %v", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := m.AddTransition(Transition{}); err == nil {
		t.Error("empty transition should fail")
	}
}

func TestValidateUnreachable(t *testing.T) {
	m := tiny(t)
	m.AddState("orphan")
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("err = %v", err)
	}
}

func TestShortestPath(t *testing.T) {
	m := tiny(t)
	if p, ok := m.shortestPath("a", "a"); !ok || len(p) != 0 {
		t.Errorf("self path = %v, %v", p, ok)
	}
	p, ok := m.shortestPath("a", "b")
	if !ok || len(p) != 1 {
		t.Errorf("a->b = %v, %v", p, ok)
	}
	if _, ok := m.shortestPath("b", "nowhere"); ok {
		t.Error("path to unknown state should fail")
	}
}

func TestAllTransitionsTour(t *testing.T) {
	m := tiny(t)
	tours, err := m.AllTransitionsTour()
	if err != nil {
		t.Fatal(err)
	}
	if len(tours) != m.NumTransitions() {
		t.Fatalf("tours = %d, want %d", len(tours), m.NumTransitions())
	}
	covered := map[string]bool{}
	for _, tour := range tours {
		if len(tour.Steps) == 0 {
			t.Fatal("empty tour")
		}
		// Every tour starts at the initial state and is a connected path.
		if tour.Steps[0].From != m.Initial() {
			t.Errorf("tour starts at %s", tour.Steps[0].From)
		}
		for i := 0; i+1 < len(tour.Steps); i++ {
			if tour.Steps[i].To != tour.Steps[i+1].From {
				t.Errorf("tour broken at step %d: %s vs %s", i, tour.Steps[i].To, tour.Steps[i+1].From)
			}
		}
		last := tour.Steps[len(tour.Steps)-1]
		if last.key() != tour.Target.key() {
			t.Errorf("tour does not end with its target: %s vs %s", last, tour.Target)
		}
		covered[tour.Target.key()] = true
	}
	if len(covered) != m.NumTransitions() {
		t.Errorf("covered %d of %d transitions", len(covered), m.NumTransitions())
	}
}

func TestTourUnreachableTransition(t *testing.T) {
	m := New("Bad", "a")
	if err := m.AddTransition(Transition{From: "x", Method: "f", To: "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllTransitionsTour(); err == nil {
		t.Error("unreachable transition should fail the tour")
	}
}

func TestBoundedListMachineSizes(t *testing.T) {
	if _, err := BoundedListMachine(0); err == nil {
		t.Error("capacity 0 should fail")
	}
	for _, capacity := range []int{1, 2, 4, 8} {
		m, err := BoundedListMachine(capacity)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		wantStates := capacity + 1
		wantTransitions := (capacity + 1) + 2*capacity + 2*capacity // loops + adds + removes
		if m.NumStates() != wantStates {
			t.Errorf("capacity %d: states = %d, want %d", capacity, m.NumStates(), wantStates)
		}
		if m.NumTransitions() != wantTransitions {
			t.Errorf("capacity %d: transitions = %d, want %d", capacity, m.NumTransitions(), wantTransitions)
		}
	}
}

func TestBoundedListMachineGrowsLinearly(t *testing.T) {
	small, err := BoundedListMachine(4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BoundedListMachine(8)
	if err != nil {
		t.Fatal(err)
	}
	if big.NumStates() <= small.NumStates() || big.NumTransitions() <= small.NumTransitions() {
		t.Error("the FSM should grow with the capacity — that is the paper's point")
	}
}

func TestBoundedListTourRunsAgainstComponent(t *testing.T) {
	m, err := BoundedListMachine(4)
	if err != nil {
		t.Fatal(err)
	}
	tours, err := m.AllTransitionsTour()
	if err != nil {
		t.Fatal(err)
	}
	suite := SuiteFromTour(m, tours, "ObList", "m1", "~ObList", "m3")
	rep, err := testexec.Run(suite, oblist.NewFactory(), testexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("FSM tour failed against the real component: %+v", rep.Failures()[:1])
	}
	if len(suite.Cases) != m.NumTransitions() {
		t.Errorf("suite cases = %d, transitions = %d", len(suite.Cases), m.NumTransitions())
	}
}

func TestWriteDOT(t *testing.T) {
	m := tiny(t)
	var sb strings.Builder
	if err := m.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "Tiny"`,
		`"a" [shape=doublecircle]`,
		`"b" [shape=circle]`,
		`"a" -> "b" [label="go"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
