package core

import (
	"fmt"

	"concat/internal/core/canon"
	"concat/internal/driver"
	"concat/internal/store"
	"concat/internal/testexec"
)

// suiteReportKey builds the verdict-store address of a plain suite run:
// (spec, suite, seed, result-relevant options) with no mutant component.
func (c *Component) suiteReportKey(s *driver.Suite, opts testexec.Options) (store.Key, error) {
	specHash, err := c.Spec().CanonicalHash()
	if err != nil {
		return store.Key{}, fmt.Errorf("core: hashing spec: %w", err)
	}
	suiteHash, err := canon.Hash(s)
	if err != nil {
		return store.Key{}, fmt.Errorf("core: hashing suite: %w", err)
	}
	optHash, err := opts.ResultFingerprint()
	if err != nil {
		return store.Key{}, fmt.Errorf("core: fingerprinting options: %w", err)
	}
	return store.Key{
		Kind:    store.KindSuiteReport,
		Spec:    specHash,
		Suite:   suiteHash,
		Seed:    opts.Seed,
		Options: optHash,
	}, nil
}

// RunSuiteCached is RunSuite behind the content-addressed report cache: on a
// hit the recorded report is returned without executing a single case. The
// second return value reports whether the report came from the store.
//
// Caching is bypassed (plain RunSuite, cached == false) when st is
// disabled or when an Oracle is installed — an oracle is an arbitrary
// callback whose behaviour cannot be fingerprinted into the key.
func (c *Component) RunSuiteCached(s *driver.Suite, opts testexec.Options, st store.Backend) (*testexec.Report, bool, error) {
	if !store.Enabled(st) || opts.Oracle != nil {
		rep, err := c.RunSuite(s, opts)
		return rep, false, err
	}
	key, err := c.suiteReportKey(s, opts)
	if err != nil {
		return nil, false, err
	}
	var cached testexec.Report
	// A lookup error (corrupt entry) is a miss; the Put below repairs it.
	if hit, _ := st.Get(key, &cached); hit {
		return &cached, true, nil
	}
	rep, err := c.RunSuite(s, opts)
	if err != nil {
		return nil, false, err
	}
	if err := st.Put(key, rep); err != nil {
		return nil, false, fmt.Errorf("core: recording suite report: %w", err)
	}
	return rep, false, nil
}
