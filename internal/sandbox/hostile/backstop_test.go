package hostile_test

// Regression coverage for the isolation backstop: before the fix the
// parent armed a kill deadline only when CaseTimeout was set, so an
// isolated case whose child wedged in a hard loop — with no cooperative
// timeout configured — hung the campaign forever.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"concat/internal/obs"
	"concat/internal/sandbox/hostile"
	"concat/internal/testexec"
)

// TestIsolationBackstopTerminatesHangWithoutCaseTimeout runs an isolated
// infinite-loop case with CaseTimeout unset. The parent's backstop (here
// shortened from its 30s default to keep the test fast; the default wiring
// is covered by TestIsolationDeadlinePrecedence in testexec) must kill the
// child and classify the case as a timeout instead of hanging.
func TestIsolationBackstopTerminatesHangWithoutCaseTimeout(t *testing.T) {
	opts := isolatedOpts(t, hostile.Context{Behavior: hostile.InfiniteLoop})
	if opts.CaseTimeout != 0 {
		t.Fatalf("precondition: CaseTimeout must be unset, got %v", opts.CaseTimeout)
	}
	opts.IsolationBackstop = 2 * time.Second

	done := make(chan *testexec.Report, 1)
	go func() {
		rep, err := testexec.Run(suiteFor(hostile.InfiniteLoop, 1), hostile.NewFactory(hostile.InfiniteLoop), opts)
		if err != nil {
			t.Errorf("Run: %v", err)
			done <- nil
			return
		}
		done <- rep
	}()
	var rep *testexec.Report
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("isolated hang was not terminated: the backstop did not arm")
	}
	if rep == nil {
		return
	}
	res := rep.Results[0]
	if res.Outcome != testexec.OutcomeTimeout {
		t.Fatalf("outcome = %s (detail %q), want timeout from the harness backstop", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "harness deadline") {
		t.Errorf("detail = %q, want the backstop kill message", res.Detail)
	}
}

// TestIsolationShipsChildSpans: with tracing on, an isolated case's child
// process collects its call spans and the parent re-parents them under the
// case's child-spawn span — and the piggybacking leaves the case result
// exactly as an untraced run reports it.
func TestIsolationShipsChildSpans(t *testing.T) {
	s := suiteFor(hostile.Benign, 1)
	plain, err := testexec.Run(s, hostile.NewFactory(hostile.Benign),
		isolatedOpts(t, hostile.Context{Behavior: hostile.Benign}))
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewCollector()
	opts := isolatedOpts(t, hostile.Context{Behavior: hostile.Benign})
	opts.Trace = tr
	traced, err := testexec.Run(s, hostile.NewFactory(hostile.Benign), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Results, traced.Results) {
		t.Errorf("tracing changed the isolated results:\n%+v\nvs\n%+v", plain.Results, traced.Results)
	}

	spans := tr.Spans()
	if err := obs.ValidateTrace(spans); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	var spawn, childCalls int
	var spawnID obs.SpanID
	for _, sp := range spans {
		if sp.Kind == obs.KindSpawn {
			spawn++
			spawnID = sp.ID
		}
	}
	if spawn != 1 {
		t.Fatalf("child-spawn spans = %d, want 1", spawn)
	}
	// The child's call spans must hang off the spawn span after rebasing
	// (directly, or via a rebased child-side parent).
	byID := map[obs.SpanID]obs.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Kind != obs.KindCall {
			continue
		}
		cur := sp
		for cur.Parent != 0 {
			if cur.Parent == spawnID {
				childCalls++
				break
			}
			cur = byID[cur.Parent]
		}
	}
	if childCalls == 0 {
		t.Error("no call spans re-parented under the child-spawn span")
	}
}
