package concat

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEmittedDriverCompilesAndRuns exercises the paper's Figures 6-7
// architecture end-to-end: the Driver Generator emits a standalone Go
// driver source, the Go toolchain compiles it, and the resulting program
// executes the suite against the component and reports success. The emitted
// package must live inside this module (it imports internal packages), so
// the test creates a temporary package directory under the repository root.
func TestEmittedDriverCompilesAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program with the Go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}

	comp := Target("Account")
	suite, err := Generate(comp.Spec(), GenOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var src bytes.Buffer
	err = EmitDriver(&src, suite, EmitOptions{
		ComponentImport: "concat/internal/components/account",
		FactoryExpr:     "account.NewFactory()",
	})
	if err != nil {
		t.Fatal(err)
	}

	dir, err := os.MkdirTemp(".", "emitted-driver-e2e-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goBin, "run", "./"+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("emitted driver failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "pass=") {
		t.Errorf("driver output missing summary:\n%s", out)
	}
	if !strings.Contains(string(out), "TestCaseTC0 OK!") {
		t.Errorf("driver output missing Result.txt log:\n%s", out)
	}
}
