package sandbox

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"concat/internal/obs"
)

// ProcessSpec describes one resource-bounded subprocess run.
type ProcessSpec struct {
	// Argv is the command line; Argv[0] is the executable.
	Argv []string
	// Stdin is fed to the process on standard input.
	Stdin []byte
	// Env entries are appended to the parent environment.
	Env []string
	// Timeout, when positive, kills the process after the deadline.
	Timeout time.Duration
	// MaxOutputBytes caps each captured stream; excess output is dropped
	// (the head is kept). Zero applies an 8MB default — the cap exists so a
	// flooding child cannot exhaust the harness's memory.
	MaxOutputBytes int64
	// Span, when set, is annotated with the child's exit classification
	// (exitCode, timedOut, fatal). RunProcess never ends the span — its
	// lifetime belongs to the caller.
	Span *obs.ActiveSpan
}

// ProcessResult is the classified outcome of a subprocess run. A non-nil
// result means the process was spawned; whether it exited cleanly is the
// caller's classification problem, driven by ExitCode/TimedOut/FatalSummary.
type ProcessResult struct {
	Stdout, Stderr []byte
	// ExitCode is the process exit status; -1 when killed by a signal.
	ExitCode int
	// TimedOut reports that the harness killed the process at the deadline.
	TimedOut bool
	// FatalSummary is a deterministic one-line classification of an
	// abnormal exit: the runtime's "fatal error:"/"panic:" line when the
	// stderr carries one, otherwise the exit status. Empty on exit 0.
	FatalSummary string
}

const defaultMaxOutputBytes = 8 << 20

// RunProcess spawns the command and waits for it. The returned error is
// non-nil only for spawn failures (the process never ran) — those are the
// retryable harness-level errors; once the process runs, its death is data,
// classified into the result.
func RunProcess(spec ProcessSpec) (*ProcessResult, error) {
	if len(spec.Argv) == 0 {
		return nil, fmt.Errorf("sandbox: empty argv")
	}
	maxOut := spec.MaxOutputBytes
	if maxOut <= 0 {
		maxOut = defaultMaxOutputBytes
	}
	cmd := exec.Command(spec.Argv[0], spec.Argv[1:]...)
	cmd.Stdin = bytes.NewReader(spec.Stdin)
	stdout := &headBuffer{max: maxOut}
	stderr := &headBuffer{max: maxOut}
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	cmd.Env = append(os.Environ(), spec.Env...)
	// The child runs in its own process group so a deadline kill reaches
	// its descendants too, and WaitDelay stops an orphaned descendant that
	// inherited the output pipes from wedging Wait forever.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.WaitDelay = 2 * time.Second
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("sandbox: spawning %s: %w", spec.Argv[0], err)
	}

	var timedOut atomic.Bool
	var timer *time.Timer
	if spec.Timeout > 0 {
		timer = time.AfterFunc(spec.Timeout, func() {
			timedOut.Store(true)
			if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
				_ = cmd.Process.Kill()
			}
		})
	}
	waitErr := cmd.Wait()
	if timer != nil {
		// If the timer fired it raced the exit; waitErr and the timedOut
		// flag together decide whether the kill landed.
		timer.Stop()
	}

	res := &ProcessResult{
		Stdout:   stdout.Bytes(),
		Stderr:   stderr.Bytes(),
		ExitCode: cmd.ProcessState.ExitCode(),
		TimedOut: timedOut.Load() && waitErr != nil,
	}
	if waitErr != nil || res.ExitCode != 0 {
		res.FatalSummary = SummarizeFatal(cmd.ProcessState.String(), res.Stderr)
	}
	if spec.Span != nil {
		spec.Span.SetAttr("exitCode", fmt.Sprintf("%d", res.ExitCode))
		if res.TimedOut {
			spec.Span.SetAttr("timedOut", "true")
		}
		if res.FatalSummary != "" {
			spec.Span.SetAttr("fatal", res.FatalSummary)
		}
	}
	return res, nil
}

// SummarizeFatal builds the deterministic one-line classification of an
// abnormal exit. The Go runtime prints "fatal error: stack overflow" (or
// "panic: ..." for an unrecovered panic) before dying, and those lines are
// stable across runs — unlike the goroutine dump that follows them, which
// is full of addresses and must never reach a reproducible report. Exported
// so the warm worker pool classifies a dead worker with the same line the
// spawn-per-case path would have produced.
func SummarizeFatal(exitDesc string, stderr []byte) string {
	var runtimeLine string
	for _, line := range strings.Split(string(stderr), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "fatal error:"), strings.HasPrefix(line, "panic:"):
			return fmt.Sprintf("%s (%s)", line, exitDesc)
		case runtimeLine == "" && strings.HasPrefix(line, "runtime:"):
			runtimeLine = line
		}
	}
	if runtimeLine != "" {
		return fmt.Sprintf("%s (%s)", runtimeLine, exitDesc)
	}
	return exitDesc
}

// headBuffer keeps the first max bytes written and drops the rest — the
// interesting part of a crashing child's output is its head (the fatal
// error line), and an unbounded child must not grow an unbounded buffer in
// the harness.
type headBuffer struct {
	buf bytes.Buffer
	max int64
}

func (h *headBuffer) Write(p []byte) (int, error) {
	room := h.max - int64(h.buf.Len())
	if room > 0 {
		if int64(len(p)) < room {
			room = int64(len(p))
		}
		h.buf.Write(p[:room])
	}
	// Report full consumption so the child never blocks on a pipe the
	// harness has stopped reading.
	return len(p), nil
}

func (h *headBuffer) Bytes() []byte { return h.buf.Bytes() }
