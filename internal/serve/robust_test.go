package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"concat/internal/analysis"
	"concat/internal/sandbox"
	"concat/internal/serve/chaos"
)

// fastRetry keeps retry/lease tests snappy without changing the semantics
// under test.
func fastRetry(attempts int) sandbox.RetryPolicy {
	return sandbox.RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state", j.ID)
	}
}

func TestBackoffDelayDeterministic(t *testing.T) {
	p := sandbox.RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 500 * time.Millisecond}, // capped
		{9, 500 * time.Millisecond},
	} {
		if got := backoffDelay(p, tc.attempt); got != tc.want {
			t.Errorf("backoffDelay(attempt %d) = %s, want %s", tc.attempt, got, tc.want)
		}
	}
}

func TestRetryAfterComputedFromQueueDepth(t *testing.T) {
	// One worker pinned in a stub campaign, three jobs queued, recent jobs
	// averaging 2s: the 503 must carry Retry-After ceil(3*2s/1) = 6, not the
	// old hard-coded 1.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 3})
	started := make(chan string, 8)
	release := make(chan struct{})
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		started <- j.ID
		<-release
		return nil, []byte("stub report\n"), nil
	}
	defer close(release)
	for i := 0; i < 4; i++ {
		s.recordDuration(2 * time.Second)
	}

	first, code := submit(t, ts, Request{Component: "Account", Seed: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	<-started // worker now pinned; the queue is empty again
	for i := 2; i <= 4; i++ {
		if _, code := submit(t, ts, Request{Component: "Account", Seed: int64(i)}); code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
	}
	body, _ := json.Marshal(Request{Component: "Account", Seed: 5})
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: HTTP %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After = %q, want 6 (3 queued * 2s mean / 1 worker)", got)
	}
	_ = first
}

func TestWorkerPanicRetriesThenSucceeds(t *testing.T) {
	// The chaos kit panics the first two attempts mid-campaign; the retry
	// loop must contain both panics and let the third attempt finish.
	faults := &chaos.Faults{CampaignStart: func(jobID string, attempt int) {
		if attempt < 3 {
			panic(fmt.Sprintf("injected crash on attempt %d", attempt))
		}
	}}
	s, ts := newTestServer(t, Config{Retry: fastRetry(3), Faults: faults})
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		return nil, []byte("stub report\n"), nil
	}
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q (%s), want done", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", final.Attempts)
	}
	if got := s.nRetries.Load(); got != 2 {
		t.Errorf("retry counter = %d, want 2", got)
	}
	if report := fetchReport(t, ts, st.ID); !bytes.Equal(report, []byte("stub report\n")) {
		t.Errorf("report after retries = %q", report)
	}
}

func TestPoisonJobQuarantined(t *testing.T) {
	// A job that crashes on every attempt must converge to quarantine — a
	// terminal state with the cause — instead of retrying forever.
	faults := &chaos.Faults{CampaignStart: func(jobID string, attempt int) {
		panic("poison")
	}}
	s, ts := newTestServer(t, Config{Retry: fastRetry(2), Faults: faults})
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		return nil, []byte("unreachable\n"), nil
	}
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	final := getStatus(t, ts, st.ID)
	if final.State != StateQuarantined {
		t.Fatalf("state = %q, want quarantined", final.State)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want the full budget of 2", final.Attempts)
	}
	if final.Error == "" {
		t.Error("quarantined job lost its failure cause")
	}
	if got := s.nQuarantined.Load(); got != 1 {
		t.Errorf("quarantine counter = %d, want 1", got)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("quarantined report: HTTP %d, want 500", resp.StatusCode)
	}
}

func TestLeaseReclaimOfWedgedWorker(t *testing.T) {
	// The first attempt wedges past its lease; the job must be reclaimed and
	// retried, and the wedged attempt's eventual result discarded.
	var attempts atomic.Int64
	wedged := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, Lease: 50 * time.Millisecond, Retry: fastRetry(3)})
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		if attempts.Add(1) == 1 {
			<-wedged
			return nil, []byte("stale result from the wedged attempt\n"), nil
		}
		return nil, []byte("fresh result\n"), nil
	}
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	if got := s.nReclaims.Load(); got != 1 {
		t.Errorf("reclaim counter = %d, want 1", got)
	}
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone || final.Attempts != 2 {
		t.Fatalf("after reclaim: state=%q attempts=%d, want done/2", final.State, final.Attempts)
	}
	// Unwedge the stale attempt: its late result must change nothing.
	close(wedged)
	time.Sleep(20 * time.Millisecond)
	if report := fetchReport(t, ts, st.ID); !bytes.Equal(report, []byte("fresh result\n")) {
		t.Errorf("stale attempt overwrote the report: %q", report)
	}
}

func TestDrainRejectsThenCheckpoints(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Journal: jn})
	release := make(chan struct{})
	started := make(chan string, 1)
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		started <- j.ID
		<-release
		return nil, []byte("stub report\n"), nil
	}
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	<-started

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(10 * time.Second) }()
	// Wait for admission to close, then verify the HTTP surface: 503 with a
	// Retry-After, not a hang or a hard close.
	for {
		if _, err := s.Submit(Request{Component: "Account", Seed: 9}); err == ErrDraining {
			break
		} else if err != nil {
			t.Fatalf("Submit while draining = %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	body, _ := json.Marshal(Request{Component: "Account", Seed: 10})
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}

	// The in-flight job finishes; drain reports clean and checkpoints it.
	close(release)
	if !<-drained {
		t.Fatal("Drain reported unclean with ample deadline")
	}
	if final := getStatus(t, ts, st.ID); final.State != StateDone {
		t.Errorf("in-flight job after drain: state = %q, want done", final.State)
	}
	cp, ok := jn.LastCheckpoint()
	if !ok || !cp.Clean || cp.Active != 0 {
		t.Errorf("checkpoint = %+v, %v; want clean with 0 active", cp, ok)
	}
}

func TestDrainDeadlineLeavesJobsJournaled(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Journal: jn})
	t.Cleanup(s.Close)
	started := make(chan string, 1)
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		started <- j.ID
		select {} // wedged until the process "dies"
	}
	if _, err := s.Submit(Request{Component: "Account"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Submit(Request{Component: "Account", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Drain(20 * time.Millisecond) {
		t.Fatal("Drain reported clean with a wedged job")
	}
	cp, ok := jn.LastCheckpoint()
	if !ok || cp.Clean || cp.Active != 2 {
		t.Errorf("checkpoint = %+v, %v; want unclean with 2 active", cp, ok)
	}
	recs, _, err := jn.Replay()
	if err != nil {
		t.Fatal(err)
	}
	byState := map[string]int{}
	for _, rec := range recs {
		byState[rec.State]++
	}
	if byState[StateRunning] != 1 || byState[StateQueued] != 1 {
		t.Errorf("journal after hard drain = %v, want 1 running + 1 queued", byState)
	}
}

func TestRestartReplaysPendingJobs(t *testing.T) {
	dir := t.TempDir()
	jn1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Workers: 1, Journal: jn1})
	started := make(chan string, 1)
	srv1.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		started <- j.ID
		select {} // the process dies mid-campaign
	}
	for seed := 1; seed <= 2; seed++ {
		if _, err := srv1.Submit(Request{Component: "Account", Seed: int64(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	srv1.Drain(10 * time.Millisecond) // force-stop: c1 running, c2 queued

	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Workers: 1, Journal: jn2})
	t.Cleanup(srv2.Close)
	srv2.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		return nil, []byte("replayed " + j.ID + "\n"), nil
	}
	if got := srv2.nReplayed.Load(); got != 2 {
		t.Fatalf("replayed %d jobs, want 2", got)
	}
	for _, id := range []string{"c1", "c2"} {
		j, ok := srv2.Job(id)
		if !ok {
			t.Fatalf("job %s not replayed", id)
		}
		waitDone(t, j)
		st := j.Status()
		if st.State != StateDone {
			t.Errorf("replayed %s: state = %q (%s)", id, st.State, st.Error)
		}
	}
	// The interrupted attempt stays counted, so crash-looping jobs converge
	// on quarantine across restarts instead of resetting their budget.
	if j, _ := srv2.Job("c1"); j.Attempts() != 2 {
		t.Errorf("c1 attempts after replay = %d, want 2 (interrupted + replay)", j.Attempts())
	}
	// ID allocation resumes after the journaled maximum.
	j3, err := srv2.Submit(Request{Component: "Account", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "c3" {
		t.Errorf("post-replay ID = %q, want c3", j3.ID)
	}
	waitDone(t, j3)
}

func TestRestartRestoresTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	jn1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Workers: 1, Journal: jn1})
	srv1.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		return nil, []byte("finished report\n"), nil
	}
	j, err := srv1.Submit(Request{Component: "Account"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	srv1.Close()

	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Workers: 1, Journal: jn2})
	t.Cleanup(srv2.Close)
	if got := srv2.nReplayed.Load(); got != 0 {
		t.Errorf("terminal job re-queued: replay counter = %d, want 0", got)
	}
	r, ok := srv2.Job("c1")
	if !ok {
		t.Fatal("terminal job lost across restart")
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("restored terminal job is not done")
	}
	st := r.Status()
	if st.State != StateDone {
		t.Errorf("restored state = %q", st.State)
	}
	r.mu.Lock()
	report := r.report
	r.mu.Unlock()
	if !bytes.Equal(report, []byte("finished report\n")) {
		t.Errorf("restored report = %q", report)
	}
}

func TestMetricsExposeRecoveryCounters(t *testing.T) {
	// The recovery counters are present from process start — absence must
	// never be confusable with zero.
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"concat_journal_replayed_total 0",
		"concat_journal_corrupt_total 0",
		"concat_lease_reclaims_total 0",
		"concat_job_retries_total 0",
		"concat_jobs_quarantined_total 0",
		"concat_store_quarantined_total 0",
		"concat_draining 0",
	} {
		if !bytes.Contains(body.Bytes(), []byte(line+"\n")) {
			t.Errorf("idle /metrics missing %q:\n%s", line, body.String())
		}
	}
}
