// Regression suite for the warm worker pool (IsolatePool): the pool must
// keep every containment guarantee spawn-per-case isolation earned —
// fatal cases kill only their worker, a mid-batch death consumes exactly
// the in-flight case and re-dispatches the rest once, a wedged worker is
// backstop-killed, a dirty worker (abandoned timeout goroutine) is never
// reused — all while classifications stay byte-identical to the spawn
// path.
package hostile_test

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"concat/internal/mutation"
	"concat/internal/sandbox/hostile"
	"concat/internal/sandbox/pool"
	"concat/internal/testexec"
)

// pooledOpts configures a run whose cases execute in warm pool workers:
// this test binary re-executed with ServerEnv's batch value (see TestMain).
func pooledOpts(t *testing.T, ctx hostile.Context) testexec.Options {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	raw, err := json.Marshal(ctx)
	if err != nil {
		t.Fatalf("marshal context: %v", err)
	}
	return testexec.Options{
		Seed:             42,
		Isolation:        testexec.IsolatePool,
		IsolationCommand: []string{exe},
		IsolationContext: raw,
	}
}

// sharedPool builds a pool the test owns, so it can assert on lifecycle
// stats (spawns prove restarts, restarts prove containment).
func sharedPool(t *testing.T, opts testexec.Options, size int) *pool.Pool {
	t.Helper()
	p, err := testexec.NewWorkerPool(opts, size)
	if err != nil {
		t.Fatalf("NewWorkerPool: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestPoolMidBatchCrashRedispatchesExactlyOnce is the pool's core
// containment claim. ExitMidBatch passes the first case a worker serves
// and kills the process on the second — so a 4-case batch on one warm
// worker must unfold as: pass, crash (worker 1 dies mid-batch), pass,
// crash (worker 2, fed the re-dispatched remainder, dies the same way).
// Two workers spawned, two discarded, every case classified exactly once.
func TestPoolMidBatchCrashRedispatchesExactlyOnce(t *testing.T) {
	opts := pooledOpts(t, hostile.Context{Behavior: hostile.ExitMidBatch})
	opts.BatchSize = 4
	p := sharedPool(t, opts, 1)
	opts.WorkerPool = p

	s := suiteFor(hostile.ExitMidBatch, 4)
	rep, err := testexec.Run(s, hostile.NewFactory(hostile.ExitMidBatch), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []testexec.Outcome{
		testexec.OutcomePass, testexec.OutcomePanic,
		testexec.OutcomePass, testexec.OutcomePanic,
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(want))
	}
	for i, res := range rep.Results {
		if res.Outcome != want[i] {
			t.Errorf("case %s: outcome %s (detail %q), want %s", res.CaseID, res.Outcome, res.Detail, want[i])
		}
		if res.Outcome == testexec.OutcomePanic &&
			(!strings.Contains(res.Detail, "fatal subprocess failure") || !strings.Contains(res.Detail, "exit status 66")) {
			t.Errorf("case %s: crash detail %q, want the spawn-path fatal summary", res.CaseID, res.Detail)
		}
	}
	st := p.Stats()
	if st.Spawned != 2 || st.Discarded != 2 {
		t.Errorf("pool stats %+v, want exactly 2 spawns / 2 discards — one restart per mid-batch crash", st)
	}

	// The surviving cases ran in a fresh world: their transcripts must be
	// byte-identical to a benign case's (first-instance ExitMidBatch pokes
	// behave exactly like Benign).
	benign, err := testexec.Run(suiteFor(hostile.Benign, 4), hostile.NewFactory(hostile.Benign), testexec.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if rep.Results[i].Transcript != benign.Results[i].Transcript {
			t.Errorf("case %s transcript diverged from the fresh-world reference:\n%q\nvs\n%q",
				rep.Results[i].CaseID, rep.Results[i].Transcript, benign.Results[i].Transcript)
		}
	}
}

// TestPoolContainsFatalBehaviors mirrors the spawn-mode containment proof:
// a worker killed by os.Exit or stack exhaustion yields the same crash
// outcome with the same deterministic summary, batch dispatch or not.
func TestPoolContainsFatalBehaviors(t *testing.T) {
	wantDetail := map[hostile.Behavior]string{
		hostile.Exit:    "exit status 66",
		hostile.Recurse: "stack overflow",
	}
	for _, b := range hostile.FatalBehaviors() {
		t.Run(string(b), func(t *testing.T) {
			opts := pooledOpts(t, hostile.Context{Behavior: b})
			rep, err := testexec.Run(suiteFor(b, 1), hostile.NewFactory(b), opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			res := rep.Results[0]
			if res.Outcome != testexec.OutcomePanic {
				t.Fatalf("outcome = %s (detail %q), want crash", res.Outcome, res.Detail)
			}
			if !strings.Contains(res.Detail, "fatal subprocess failure") ||
				!strings.Contains(res.Detail, wantDetail[b]) {
				t.Errorf("detail = %q, want fatal summary containing %q", res.Detail, wantDetail[b])
			}
		})
	}
}

// TestPoolMatchesSubprocessReports: for a suite mixing passes and
// recoverable failures, the pool's report must be bit-for-bit the spawn
// path's report — same outcomes, details, transcripts, seeds, telemetry.
func TestPoolMatchesSubprocessReports(t *testing.T) {
	for _, b := range []hostile.Behavior{hostile.Benign, hostile.PanicOnInvoke, hostile.BurnBudget} {
		t.Run(string(b), func(t *testing.T) {
			s := suiteFor(b, 4)
			mkOpts := func(mode testexec.IsolationMode) testexec.Options {
				opts := isolatedOpts(t, hostile.Context{Behavior: b})
				opts.Isolation = mode
				opts.StepBudget = 500
				opts.MaxTranscriptBytes = 8 << 10
				return opts
			}
			spawn, err := testexec.Run(s, hostile.NewFactory(b), mkOpts(testexec.IsolateSubprocess))
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := testexec.Run(s, hostile.NewFactory(b), mkOpts(testexec.IsolatePool))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(spawn.Results, pooled.Results) {
				t.Errorf("results diverge between spawn and pool isolation:\n%+v\nvs\n%+v", spawn.Results, pooled.Results)
			}
			if !reflect.DeepEqual(spawn.BITSites, pooled.BITSites) {
				t.Errorf("BITSites diverge:\n%+v\nvs\n%+v", spawn.BITSites, pooled.BITSites)
			}
		})
	}
}

// TestPoolBackstopKillsWedgedWorker: a worker hung beyond cooperation (no
// in-child CaseTimeout to trip) is killed at the parent's deadline with
// the spawn path's timeout classification, and the batch's remaining case
// is re-dispatched to a fresh worker — the budget-kill restart path.
func TestPoolBackstopKillsWedgedWorker(t *testing.T) {
	opts := pooledOpts(t, hostile.Context{Behavior: hostile.InfiniteLoop})
	opts.IsolationBackstop = 500 * time.Millisecond
	opts.BatchSize = 2
	p := sharedPool(t, opts, 1)
	opts.WorkerPool = p

	rep, err := testexec.Run(suiteFor(hostile.InfiniteLoop, 2), hostile.NewFactory(hostile.InfiniteLoop), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, res := range rep.Results {
		if res.Outcome != testexec.OutcomeTimeout {
			t.Errorf("case %s: outcome %s (detail %q), want timeout", res.CaseID, res.Outcome, res.Detail)
		}
		if !strings.Contains(res.Detail, "harness deadline; subprocess killed") {
			t.Errorf("case %s: detail %q, want the backstop-kill classification", res.CaseID, res.Detail)
		}
	}
	if st := p.Stats(); st.Spawned != 2 || st.Discarded != 2 {
		t.Errorf("pool stats %+v, want 2 spawns / 2 discards — each wedged worker killed and replaced", st)
	}
}

// TestPoolRecyclesDirtyWorker: a case that trips the in-child CaseTimeout
// completes cooperatively, but it abandons a goroutine inside the worker —
// the worker is no longer anyone's fresh world, so the pool must restart
// it between batches instead of reusing it.
func TestPoolRecyclesDirtyWorker(t *testing.T) {
	opts := pooledOpts(t, hostile.Context{Behavior: hostile.InfiniteLoop})
	opts.CaseTimeout = 100 * time.Millisecond
	opts.BatchSize = 1
	p := sharedPool(t, opts, 1)
	opts.WorkerPool = p

	rep, err := testexec.Run(suiteFor(hostile.InfiniteLoop, 2), hostile.NewFactory(hostile.InfiniteLoop), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, res := range rep.Results {
		if res.Outcome != testexec.OutcomeTimeout {
			t.Errorf("case %s: outcome %s (detail %q), want the child's cooperative timeout", res.CaseID, res.Outcome, res.Detail)
		}
		if !strings.Contains(res.Detail, "goroutine abandoned") {
			t.Errorf("case %s: detail %q, want the in-child timeout classification", res.CaseID, res.Detail)
		}
	}
	// The harness itself abandoned nothing — the leak lives (and dies) in
	// the discarded workers.
	if rep.AbandonedGoroutines != 0 {
		t.Errorf("AbandonedGoroutines = %d in the parent, want 0", rep.AbandonedGoroutines)
	}
	if st := p.Stats(); st.Spawned != 2 || st.Discarded != 2 {
		t.Errorf("pool stats %+v, want 2 spawns / 2 discards — dirty workers must not be reused", st)
	}
}

// TestPoolShipsMutantAndFlags: the per-batch isolation context arms a
// mutant inside the warm worker and reach/infection flags come back per
// case — the wire contract mutation campaigns ride on, now amortized.
func TestPoolShipsMutantAndFlags(t *testing.T) {
	m := mutation.Mutant{
		ID: "soft", Site: hostile.StepSite, Method: "Step",
		Operator: mutation.OpRepLoc, Replacement: "soft",
	}
	opts := pooledOpts(t, hostile.Context{Mutant: &m})
	rep, err := testexec.Run(hostile.MutSuite(3), hostile.NewMutFactory(nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != testexec.OutcomePass {
		t.Fatalf("outcome = %s (detail %q)", res.Outcome, res.Detail)
	}
	var flags hostile.Flags
	if err := json.Unmarshal(res.Extra, &flags); err != nil {
		t.Fatalf("decoding Extra %q: %v", res.Extra, err)
	}
	if !flags.Reached || flags.Infected {
		t.Errorf("flags = %+v, want reached-only", flags)
	}
}

// TestPoolFatalMutantKilled: the fatal "hard" mutant (os.Exit) kills its
// warm worker and the parent classifies the crash kill with the same
// detail as spawn-mode — PR 2's containment, preserved under batching.
func TestPoolFatalMutantKilled(t *testing.T) {
	m := mutation.Mutant{
		ID: "hard", Site: hostile.StepSite, Method: "Step",
		Operator: mutation.OpRepGlob, Replacement: "hard",
	}
	opts := pooledOpts(t, hostile.Context{Mutant: &m})
	rep, err := testexec.Run(hostile.MutSuite(3), hostile.NewMutFactory(nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != testexec.OutcomePanic {
		t.Fatalf("outcome = %s (detail %q), want crash", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "exit status 66") {
		t.Errorf("detail = %q", res.Detail)
	}
}
