// Cross-mode determinism suite: executing a component's generated tests
// in-process, under spawn-per-case subprocess isolation, or on the warm
// worker pool must be unobservable in the results. For every built-in
// component the reports are byte-identical across all three isolation
// modes at serial and parallel scheduling, and the Account mutation
// campaign's kill matrix and canonical coverage artifact are byte-identical
// too. Isolation is a containment strategy, never an oracle input.
package concat

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/testexec"
)

// TestMain doubles the test binary as a case server for the isolation
// modes below: when spawned with the executor's ServerEnv sentinel set it
// serves cases over stdin/stdout — one-shot or the warm-pool batch loop,
// per the sentinel's value — and exits instead of running the tests.
func TestMain(m *testing.M) {
	if served, err := testexec.ServeFromEnv(os.Stdin, os.Stdout, core.CaseResolver()); served {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// raceFriendlyEnv is appended to every spawned case server's environment:
// the race runtime sleeps atexit_sleep_ms (default 1000 ms) at process
// exit to catch late races, so under `go test -race` each spawn-per-case
// child would serialize a full second of sleeping — a few hundred cases
// turn into minutes of nothing. Disabling the sleep only in the
// short-lived children keeps the run honest (the parent keeps its full
// race configuration) and is a no-op for non-race binaries.
var raceFriendlyEnv = []string{"GORACE=atexit_sleep_ms=0"}

// isolationModes are the three execution strategies under test, in the
// order they appear in failure messages.
var isolationModes = []struct {
	name string
	mode testexec.IsolationMode
}{
	{"in-process", testexec.IsolateInProcess},
	{"subprocess", testexec.IsolateSubprocess},
	{"pool", testexec.IsolatePool},
}

// reportBytes canonicalizes a report for byte comparison: the JSON
// encoding of every result-bearing field. Reports carry no timestamps or
// durations, so nothing needs stripping — trace spans are a side channel
// that never lands in the report.
func reportBytes(t *testing.T, rep *testexec.Report) []byte {
	t.Helper()
	data, err := json.Marshal(struct {
		Component           string
		Results             []testexec.CaseResult
		AbandonedGoroutines int
		BITSites            any
	}{rep.Component, rep.Results, rep.AbandonedGoroutines, rep.BITSites})
	if err != nil {
		t.Fatalf("encoding report: %v", err)
	}
	return data
}

// runMode executes the suite under one isolation mode at the given
// parallelism and returns the canonical report bytes.
func runMode(t *testing.T, target core.Target, suite *driver.Suite, mode testexec.IsolationMode, parallelism int) []byte {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	opts := testexec.Options{Seed: 42, Isolation: mode, Parallelism: parallelism}
	if mode != testexec.IsolateInProcess {
		opts.IsolationCommand = []string{exe}
		opts.IsolationEnv = raceFriendlyEnv
	}
	rep, err := target.New(nil).RunSuite(suite, opts)
	if err != nil {
		t.Fatalf("running suite (mode %v, parallelism %d): %v", mode, parallelism, err)
	}
	return reportBytes(t, rep)
}

// TestIsolationModesByteIdenticalReports runs every built-in component's
// generated suite under all three isolation modes at parallelism 1 and 4
// and demands byte-identical reports. The in-process serial run is the
// reference; each of the other five executions must reproduce its bytes.
func TestIsolationModesByteIdenticalReports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every built-in suite six times, mostly in child processes")
	}
	targets := core.Targets()
	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		target := targets[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			suite, err := target.New(nil).GenerateSuite(driver.Options{Seed: 42})
			if err != nil {
				t.Fatalf("generating suite: %v", err)
			}
			want := runMode(t, target, suite, testexec.IsolateInProcess, 1)
			for _, m := range isolationModes {
				for _, parallelism := range []int{1, 4} {
					if m.mode == testexec.IsolateInProcess && parallelism == 1 {
						continue // the reference itself
					}
					got := runMode(t, target, suite, m.mode, parallelism)
					if string(got) != string(want) {
						t.Errorf("%s report at parallelism %d deviates from the in-process serial report:\ngot:  %s\nwant: %s",
							m.name, parallelism, got, want)
					}
				}
			}
		})
	}
}

// TestIsolationModesByteIdenticalCampaign runs the Account mutation
// campaign under all three isolation modes and demands a byte-identical
// kill matrix and a byte-identical canonical coverage artifact. The
// artifact encoding is the external proof: it contains the mutant×case
// kill matrix, TFM coverage and BIT telemetry, all of which must be pure
// functions of (component, suite, seed) — never of the isolation strategy.
func TestIsolationModesByteIdenticalCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Account campaign three times, twice in child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	target, err := core.LookupTarget("Account")
	if err != nil {
		t.Fatal(err)
	}
	comp := target.New(nil)
	suite, err := comp.GenerateSuite(driver.Options{Seed: 42})
	if err != nil {
		t.Fatalf("generating suite: %v", err)
	}
	g, err := comp.Spec().TFM()
	if err != nil {
		t.Fatalf("building TFM: %v", err)
	}

	artifacts := make(map[string][]byte)
	matrices := make(map[string][]byte)
	for _, m := range isolationModes {
		opts := testexec.Options{Seed: 42, Isolation: m.mode}
		if m.mode != testexec.IsolateInProcess {
			opts.IsolationCommand = []string{exe}
			opts.IsolationEnv = raceFriendlyEnv
		}
		res, err := core.MutationRunOpts("Account", suite, nil, nil, core.MutationOptions{
			Exec:        opts,
			Parallelism: 4,
		})
		if err != nil {
			t.Fatalf("%s campaign: %v", m.name, err)
		}
		matrix, err := json.Marshal(res.Mutants)
		if err != nil {
			t.Fatalf("encoding %s kill matrix: %v", m.name, err)
		}
		matrices[m.name] = matrix
		art, err := cover.FromCampaign(g, suite, res)
		if err != nil {
			t.Fatalf("%s coverage artifact: %v", m.name, err)
		}
		encoded, err := art.Encode()
		if err != nil {
			t.Fatalf("encoding %s coverage artifact: %v", m.name, err)
		}
		artifacts[m.name] = encoded
	}
	for _, m := range isolationModes[1:] {
		if string(matrices[m.name]) != string(matrices["in-process"]) {
			t.Errorf("%s kill matrix deviates from in-process:\ngot:  %s\nwant: %s",
				m.name, matrices[m.name], matrices["in-process"])
		}
		if string(artifacts[m.name]) != string(artifacts["in-process"]) {
			t.Errorf("%s coverage artifact deviates from in-process (%d vs %d bytes)",
				m.name, len(artifacts[m.name]), len(artifacts["in-process"]))
		}
	}
}
