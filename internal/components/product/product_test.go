package product

import (
	"errors"
	"strings"
	"testing"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/stockdb"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

func newTestProduct(t *testing.T, f *Factory, ctor string, args ...domain.Value) component.Instance {
	t.Helper()
	inst, err := f.New(ctor, args)
	if err != nil {
		t.Fatalf("New(%s): %v", ctor, err)
	}
	inst.SetBITMode(bit.ModeTest)
	return inst
}

func TestSpecMatchesFigure2(t *testing.T) {
	s := Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	g, err := s.TFM()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Errorf("model nodes = %d, want 6 (Figure 2)", g.NumNodes())
	}
	// The highlighted use-case path must be a real transaction.
	ts, err := g.Transactions(tfm.EnumOptions{LoopBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantKey := strings.Join(UseCasePath(), ">")
	found := false
	for _, tr := range ts {
		if tr.Key() == wantKey {
			found = true
		}
	}
	if !found {
		t.Errorf("use-case path %s is not an enumerable transaction", wantKey)
	}
}

func TestConstructors(t *testing.T) {
	f := NewFactory()
	p := newTestProduct(t, f, "Product")
	out, err := p.Invoke("ShowAttributes", nil)
	if err != nil || !strings.Contains(out[0].MustString(), `name="unnamed"`) {
		t.Errorf("default attrs = %v, %v", out, err)
	}
	prov := f.DB().AddProvider("acme")
	p2 := newTestProduct(t, f, "ProductFull",
		domain.Int(5), domain.Str("bolt"), domain.Float(2.5), domain.Pointer(prov))
	out, err = p2.Invoke("ShowAttributes", nil)
	if err != nil || !strings.Contains(out[0].MustString(), `name="bolt" qty=5 price=2.50`) {
		t.Errorf("full attrs = %v, %v", out, err)
	}
	p3 := newTestProduct(t, f, "ProductNamed", domain.Str("nut"))
	out, err = p3.Invoke("ShowAttributes", nil)
	if err != nil || !strings.Contains(out[0].MustString(), `name="nut"`) {
		t.Errorf("named attrs = %v, %v", out, err)
	}
	// Nil provider accepted.
	p4 := newTestProduct(t, f, "ProductFull",
		domain.Int(5), domain.Str("x"), domain.Float(1), domain.Nil())
	if err := p4.InvariantTest(); err != nil {
		t.Errorf("nil-provider invariant: %v", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	f := NewFactory()
	cases := []struct {
		name string
		ctor string
		args []domain.Value
	}{
		{"unknown ctor", "Nope", nil},
		{"default with args", "Product", []domain.Value{domain.Int(1)}},
		{"qty too low", "ProductFull", []domain.Value{domain.Int(0), domain.Str("x"), domain.Float(1), domain.Nil()}},
		{"qty too high", "ProductFull", []domain.Value{domain.Int(100000), domain.Str("x"), domain.Float(1), domain.Nil()}},
		{"empty name", "ProductFull", []domain.Value{domain.Int(1), domain.Str(""), domain.Float(1), domain.Nil()}},
		{"long name", "ProductFull", []domain.Value{domain.Int(1), domain.Str(strings.Repeat("x", 31)), domain.Float(1), domain.Nil()}},
		{"price zero", "ProductFull", []domain.Value{domain.Int(1), domain.Str("x"), domain.Float(0), domain.Nil()}},
		{"price high", "ProductFull", []domain.Value{domain.Int(1), domain.Str("x"), domain.Float(10001), domain.Nil()}},
		{"named empty", "ProductNamed", []domain.Value{domain.Str("")}},
		{"bad provider type", "ProductFull", []domain.Value{domain.Int(1), domain.Str("x"), domain.Float(1), domain.Pointer(&struct{}{})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := f.New(tc.ctor, tc.args); err == nil {
				t.Error("constructor should fail")
			}
		})
	}
}

func TestUpdateMethods(t *testing.T) {
	f := NewFactory()
	p := newTestProduct(t, f, "Product")
	if _, err := p.Invoke("UpdateName", []domain.Value{domain.Str("gear")}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("UpdateQty", []domain.Value{domain.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("UpdatePrice", []domain.Value{domain.Float(3.25)}); err != nil {
		t.Fatal(err)
	}
	prov := f.DB().AddProvider("acme")
	if _, err := p.Invoke("UpdateProv", []domain.Value{domain.Pointer(prov)}); err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke("ShowAttributes", nil)
	if err != nil {
		t.Fatal(err)
	}
	attrs := out[0].MustString()
	for _, want := range []string{`name="gear"`, "qty=7", "price=3.25", "acme"} {
		if !strings.Contains(attrs, want) {
			t.Errorf("attrs %q missing %q", attrs, want)
		}
	}
	// Clearing the provider with nil.
	if _, err := p.Invoke("UpdateProv", []domain.Value{domain.Nil()}); err != nil {
		t.Fatal(err)
	}
	if err := p.InvariantTest(); err != nil {
		t.Errorf("invariant: %v", err)
	}
}

func TestUpdatePreconditions(t *testing.T) {
	f := NewFactory()
	p := newTestProduct(t, f, "Product")
	cases := []struct {
		method string
		arg    domain.Value
	}{
		{"UpdateQty", domain.Int(0)},
		{"UpdateQty", domain.Int(MaxQty + 1)},
		{"UpdateName", domain.Str("")},
		{"UpdateName", domain.Str(strings.Repeat("y", 31))},
		{"UpdatePrice", domain.Float(0)},
		{"UpdatePrice", domain.Float(10001)},
	}
	for _, tc := range cases {
		_, err := p.Invoke(tc.method, []domain.Value{tc.arg})
		if !errors.Is(err, &bit.Violation{Kind: bit.KindPrecondition}) {
			t.Errorf("%s(%v) err = %v, want precondition violation", tc.method, tc.arg, err)
		}
	}
	// Bad provider type is a plain error, not a violation.
	if _, err := p.Invoke("UpdateProv", []domain.Value{domain.Pointer(&struct{}{})}); err == nil || errors.Is(err, bit.ErrViolation) {
		t.Errorf("bad provider err = %v", err)
	}
}

func TestStockLifecycle(t *testing.T) {
	f := NewFactory()
	p := newTestProduct(t, f, "ProductNamed", domain.Str("widget"))
	// Remove before insert: observable not-found error.
	if _, err := p.Invoke("RemoveProduct", nil); !errors.Is(err, stockdb.ErrNotFound) {
		t.Errorf("remove-before-insert err = %v", err)
	}
	if _, err := p.Invoke("InsertProduct", nil); err != nil {
		t.Fatalf("InsertProduct: %v", err)
	}
	if f.DB().Count() != 1 {
		t.Errorf("db count = %d", f.DB().Count())
	}
	// Duplicate insert.
	if _, err := p.Invoke("InsertProduct", nil); !errors.Is(err, stockdb.ErrDuplicate) {
		t.Errorf("duplicate insert err = %v", err)
	}
	out, err := p.Invoke("RemoveProduct", nil)
	if err != nil || out[0].MustString() != "widget" {
		t.Errorf("RemoveProduct = %v, %v", out, err)
	}
	if f.DB().Count() != 0 {
		t.Errorf("db count after remove = %d", f.DB().Count())
	}
}

func TestReporter(t *testing.T) {
	f := NewFactory()
	p := newTestProduct(t, f, "ProductNamed", domain.Str("widget"))
	var sb strings.Builder
	if err := p.Reporter(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `Product{name: "widget"`) {
		t.Errorf("report = %q", sb.String())
	}
	if !strings.Contains(sb.String(), "stocked: false") {
		t.Errorf("report should show stock state: %q", sb.String())
	}
	if _, err := p.Invoke("InsertProduct", nil); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := p.Reporter(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stocked: true") {
		t.Errorf("report after insert: %q", sb.String())
	}
}

func TestDestroy(t *testing.T) {
	f := NewFactory()
	p := newTestProduct(t, f, "Product")
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("ShowAttributes", nil); !errors.Is(err, component.ErrDestroyed) {
		t.Errorf("post-destroy err = %v", err)
	}
}

func TestGeneratedSuiteRunsClean(t *testing.T) {
	f := NewFactory()
	suite, err := driver.Generate(Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if suite.Stats().Holes == 0 {
		t.Error("Product suite should contain structured-parameter holes (prv)")
	}
	rep, err := testexec.Run(suite, f, testexec.Options{
		Providers: f.Providers(),
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.AllPassed() {
		fails := rep.Failures()
		n := 3
		if len(fails) < n {
			n = len(fails)
		}
		t.Fatalf("%d cases failed; first: %+v", len(fails), fails[:n])
	}
}

func TestGeneratedSuiteWithoutProvidersStillRuns(t *testing.T) {
	// prv parameters are nullable, so without providers the holes complete
	// to nil — the paper's manual-completion default for optional pointers.
	f := NewFactory()
	suite, err := driver.Generate(Spec(), driver.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := testexec.Run(suite, f, testexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("failures: %+v", rep.Failures())
	}
}
