package analysis

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"concat/internal/component"
	"concat/internal/components/account"
	"concat/internal/components/oblist"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/testexec"
)

// accountAnalysis wires the small account component for fast runs.
func accountAnalysis(t *testing.T) (*Analysis, []mutation.Mutant) {
	t.Helper()
	eng := mutation.NewEngine()
	eng.MustRegisterSites(account.Sites()...)
	suite, err := driver.Generate(account.Spec(), driver.Options{
		Seed: 3, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a := &Analysis{
		Engine:  eng,
		Factory: account.NewFactoryWithEngine(eng),
		Suite:   suite,
	}
	return a, eng.Enumerate(nil, nil)
}

func TestAnalysisValidation(t *testing.T) {
	if _, err := (&Analysis{}).Run(nil); err == nil {
		t.Error("empty analysis should fail")
	}
}

func TestAnalysisRunAccount(t *testing.T) {
	a, mutants := accountAnalysis(t)
	if len(mutants) == 0 {
		t.Fatal("no mutants")
	}
	var progress bytes.Buffer
	a.Progress = &progress
	res, err := a.Run(mutants)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Mutants) != len(mutants) {
		t.Fatalf("results = %d, mutants = %d", len(res.Mutants), len(mutants))
	}
	killed := 0
	for _, mr := range res.Mutants {
		if mr.Killed {
			killed++
			if mr.Reason == 0 || mr.KillingCase == "" {
				t.Errorf("killed mutant %s lacks reason/case", mr.Mutant.ID)
			}
		}
	}
	if killed == 0 {
		t.Error("no mutants killed — the suite should catch withdraw faults")
	}
	if progress.Len() == 0 {
		t.Error("progress writer received nothing")
	}
	// The engine must be disarmed afterwards.
	if _, active := a.Engine.Active(); active {
		t.Error("engine left armed after analysis")
	}
}

func TestAnalysisDeterministic(t *testing.T) {
	a, mutants := accountAnalysis(t)
	r1, err := a.Run(mutants)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Run(mutants)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Mutants {
		if r1.Mutants[i].Killed != r2.Mutants[i].Killed ||
			r1.Mutants[i].Reason != r2.Mutants[i].Reason {
			t.Fatalf("mutant %s verdict not deterministic", r1.Mutants[i].Mutant.ID)
		}
	}
}

func TestTabulateAndRender(t *testing.T) {
	a, mutants := accountAnalysis(t)
	res, err := a.Run(mutants)
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tabulate()
	if table.Component != account.Name {
		t.Errorf("table component = %q", table.Component)
	}
	if table.Total.Mutants != len(mutants) {
		t.Errorf("total mutants = %d, want %d", table.Total.Mutants, len(mutants))
	}
	sumRows := 0
	for _, row := range table.Rows {
		sumRows += row.Mutants
		if row.Killed > row.Mutants {
			t.Errorf("row %s kills exceed mutants", row.Operator)
		}
		if s := row.Score(); s < 0 || s > 1 {
			t.Errorf("row %s score = %f", row.Operator, s)
		}
	}
	if sumRows != table.Total.Mutants {
		t.Errorf("row sum %d != total %d", sumRows, table.Total.Mutants)
	}
	var sb strings.Builder
	if err := table.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Results obtained for the Account class", "#mutants", "#killed", "#equivalent", "Score", "Withdraw"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOperatorRowScoreEdgeCases(t *testing.T) {
	if s := (OperatorRow{}).Score(); s != 1 {
		t.Errorf("empty row score = %f", s)
	}
	r := OperatorRow{Mutants: 4, Killed: 3, Equivalent: 1}
	if s := r.Score(); s != 1 {
		t.Errorf("3/(4-1) score = %f, want 1", s)
	}
	r2 := OperatorRow{Mutants: 4, Killed: 2}
	if s := r2.Score(); s != 0.5 {
		t.Errorf("2/4 score = %f", s)
	}
}

func TestKillReasonString(t *testing.T) {
	tests := []struct {
		k    KillReason
		want string
	}{
		{KillCrash, "crash"},
		{KillAssertion, "assertion"},
		{KillOutputDiff, "output-diff"},
		{KillReason(8), "reason(8)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMutantResultEquivalent(t *testing.T) {
	if (MutantResult{Killed: true, Reached: true}).Equivalent() {
		t.Error("killed mutant cannot be equivalent")
	}
	if (MutantResult{Reached: false, Infected: false}).Equivalent() {
		t.Error("unreached mutant is unexercised, not equivalent")
	}
	if !(MutantResult{Reached: true, Infected: false}).Equivalent() {
		t.Error("reached-but-never-infecting mutant is an equivalence candidate")
	}
	if (MutantResult{Reached: true, Infected: true}).Equivalent() {
		t.Error("infecting survivor is not equivalent")
	}
}

func TestAnalysisKillReasonsOnObList(t *testing.T) {
	// ObList mutants exercise all three kill criteria under its own suite.
	eng := mutation.NewEngine()
	eng.MustRegisterSites(oblist.Sites()...)
	suite, err := driver.Generate(oblist.Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := &Analysis{Engine: eng, Factory: oblist.NewFactoryWithEngine(eng), Suite: suite}
	res, err := a.Run(eng.Enumerate(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tabulate()
	if table.KillsByReason[KillAssertion] == 0 {
		t.Error("expected some assertion kills (invariant catches count corruption)")
	}
	if table.KillsByReason[KillOutputDiff] == 0 {
		t.Error("expected some output-diff kills")
	}
	if table.Total.Killed == 0 {
		t.Error("expected kills on the base suite")
	}
	score := table.Total.Score()
	if score < 0.7 {
		t.Errorf("own-suite mutation score = %.1f%%, suspiciously low", score*100)
	}
}

func TestAnalysisFailsOnBrokenReference(t *testing.T) {
	a, _ := accountAnalysis(t)
	// A suite for a different component cannot run at all.
	bad := &driver.Suite{Component: "Account", Cases: []driver.TestCase{{
		ID:    "TC0",
		Calls: []driver.Call{{MethodID: "zz", Method: "NoSuchCtor"}},
	}}}
	a.Suite = bad
	if _, err := a.Run(nil); err == nil {
		t.Error("reference run with harness errors must fail the analysis")
	}
	_ = testexec.Options{}
}

func TestParallelMatchesSequential(t *testing.T) {
	mkAnalysis := func(par int) (*Analysis, []mutation.Mutant) {
		eng := mutation.NewEngine()
		eng.MustRegisterSites(account.Sites()...)
		suite, err := driver.Generate(account.Spec(), driver.Options{
			Seed: 3, ExpandAlternatives: true, MaxAlternatives: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		a := &Analysis{
			Engine:      eng,
			Factory:     account.NewFactoryWithEngine(eng),
			Suite:       suite,
			Parallelism: par,
			Provision: func() (*mutation.Engine, component.Factory, error) {
				e := mutation.NewEngine()
				e.MustRegisterSites(account.Sites()...)
				return e, account.NewFactoryWithEngine(e), nil
			},
		}
		return a, eng.Enumerate(nil, nil)
	}
	seqA, mutants := mkAnalysis(1)
	seq, err := seqA.Run(mutants)
	if err != nil {
		t.Fatal(err)
	}
	parA, _ := mkAnalysis(4)
	par, err := parA.Run(mutants)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Mutants) != len(par.Mutants) {
		t.Fatalf("result counts differ: %d vs %d", len(seq.Mutants), len(par.Mutants))
	}
	for i := range seq.Mutants {
		s, p := seq.Mutants[i], par.Mutants[i]
		if s.Mutant.ID != p.Mutant.ID || s.Killed != p.Killed || s.Reason != p.Reason ||
			s.Reached != p.Reached || s.Infected != p.Infected {
			t.Errorf("mutant %d verdict differs: seq=%+v par=%+v", i, s, p)
		}
	}
	st, pt := seq.Tabulate(), par.Tabulate()
	if st.Total != pt.Total {
		t.Errorf("table totals differ: %+v vs %+v", st.Total, pt.Total)
	}
}

func TestParallelRequiresProvision(t *testing.T) {
	a, mutants := accountAnalysis(t)
	a.Parallelism = 4
	if _, err := a.Run(mutants); err == nil {
		t.Error("parallel run without Provision should fail")
	}
}

func TestParallelProvisionError(t *testing.T) {
	a, mutants := accountAnalysis(t)
	a.Parallelism = 4
	a.Provision = func() (*mutation.Engine, component.Factory, error) {
		return nil, nil, errors.New("no more engines")
	}
	if _, err := a.Run(mutants); err == nil || !strings.Contains(err.Error(), "provisioning") {
		t.Errorf("err = %v, want provisioning failure", err)
	}
}

func TestParallelWorkerError(t *testing.T) {
	// Workers whose engine lacks the sites fail to activate mutants; the
	// error must surface and the run must not deadlock.
	a, mutants := accountAnalysis(t)
	a.Parallelism = 2
	a.Provision = func() (*mutation.Engine, component.Factory, error) {
		e := mutation.NewEngine() // empty site table: Activate will fail
		return e, account.NewFactoryWithEngine(e), nil
	}
	if _, err := a.Run(mutants); err == nil {
		t.Error("worker activation failure should surface")
	}
}
