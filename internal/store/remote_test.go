// Remote-store protocol tests: both ends of the wire verify integrity, a
// remote write lands byte-identical to a local one, and a corrupt or lying
// server degrades to counted misses instead of wrong verdicts.

package store

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func newRemotePair(t *testing.T) (*Store, *Remote) {
	t.Helper()
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(fs))
	t.Cleanup(ts.Close)
	return fs, NewRemote(ts.URL, nil)
}

// TestRemotePutWritesLocalBytes is the shared-store property distributed
// campaigns lean on: an entry published over the wire is byte-identical to
// the file a local Put of the same (key, value) would have written, so a
// store written by a fleet diffs clean against one written by a single
// process.
func TestRemotePutWritesLocalBytes(t *testing.T) {
	serverFS, remote := newRemotePair(t)
	v := Verdict{Killed: true, Reason: 2, KillingCase: "c1", Reached: true, Infected: true}
	if err := remote.Put(testKey("m1"), v); err != nil {
		t.Fatal(err)
	}

	localFS, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := localFS.Put(testKey("m1"), v); err != nil {
		t.Fatal(err)
	}

	id, err := testKey("m1").ID()
	if err != nil {
		t.Fatal(err)
	}
	viaWire, err := os.ReadFile(serverFS.path(id))
	if err != nil {
		t.Fatalf("remote put left no entry file: %v", err)
	}
	viaLocal, err := os.ReadFile(localFS.path(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaWire, viaLocal) {
		t.Errorf("remote-written entry differs from local write:\nremote: %s\nlocal:  %s", viaWire, viaLocal)
	}
}

func TestRemoteGetServesPeerEntries(t *testing.T) {
	serverFS, remote := newRemotePair(t)
	want := Verdict{Killed: true, Reason: 5, Reached: true, Infected: true}
	if err := serverFS.Put(testKey("m1"), want); err != nil {
		t.Fatal(err)
	}
	var got Verdict
	ok, err := remote.Get(testKey("m1"), &got)
	if err != nil || !ok {
		t.Fatalf("remote Get = (%v, %v), want hit", ok, err)
	}
	if got != want {
		t.Errorf("remote Get = %+v, want %+v", got, want)
	}
	if st := remote.Stats(); st.Hits != 1 {
		t.Errorf("client stats = %+v", st)
	}
	// The serving backend counted the raw read too.
	if st := serverFS.Stats(); st.Hits != 1 {
		t.Errorf("server stats = %+v", st)
	}
}

// TestRemoteQuarantinesLyingServer: a server that answers 200 with a
// document failing integrity verification must read as a counted miss —
// the client re-executes rather than trusting the bytes.
func TestRemoteQuarantinesLyingServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"key":{"kind":"mutant-verdict"},"sum":"bogus","value":{}}`))
	}))
	t.Cleanup(ts.Close)
	remote := NewRemote(ts.URL, nil)
	var v Verdict
	ok, err := remote.Get(testKey("m1"), &v)
	if err != nil || ok {
		t.Fatalf("Get from lying server = (%v, %v), want clean miss", ok, err)
	}
	if st := remote.Stats(); st.Quarantined != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats after lying server = %+v, want 1 quarantine + 1 miss", st)
	}
}

// TestRemoteServerErrorIsError: a 500 (or unreachable peer) must surface
// as an error, not a silent miss — re-executing against a dead shared
// store would fork the fleet's view of the campaign.
func TestRemoteServerErrorIsError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	remote := NewRemote(ts.URL, nil)
	var v Verdict
	if ok, err := remote.Get(testKey("m1"), &v); err == nil || ok {
		t.Errorf("Get against 500 server = (%v, %v), want error", ok, err)
	}
	if err := remote.Put(testKey("m1"), Verdict{}); err == nil {
		t.Error("Put against 500 server succeeded")
	}
}

// TestHandlerRejectsCorruptPut: the server half verifies before storing,
// so a buggy or malicious writer cannot poison a shared store.
func TestHandlerRejectsCorruptPut(t *testing.T) {
	serverFS, _ := newRemotePair(t)
	id, err := testKey("m1").ID()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(serverFS))
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/store/"+id, strings.NewReader(`{"key":{"kind":"mutant-verdict"},"sum":"x","value":{}}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT of corrupt document = HTTP %d, want 400", resp.StatusCode)
	}
	if entries, _, _ := serverFS.Len(); entries != 0 {
		t.Errorf("corrupt PUT landed %d entries", entries)
	}
}

func TestRemoteLen(t *testing.T) {
	serverFS, remote := newRemotePair(t)
	for _, m := range []string{"m1", "m2", "m3"} {
		if err := serverFS.Put(testKey(m), Verdict{Killed: true}); err != nil {
			t.Fatal(err)
		}
	}
	entries, skipped, err := remote.Len()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 3 || skipped != 0 {
		t.Errorf("remote Len = (%d, %d), want (3, 0)", entries, skipped)
	}
}
