package concat

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"concat/internal/analysis"
	"concat/internal/experiments"
)

var updateBenchJSON = flag.Bool("update-bench", false, "rewrite BENCH_PARALLEL.json with this machine's measured campaign timings")

// runExperiment1At runs the Table 2 campaign with the given worker count
// and returns the result plus the campaign's wall-clock time (setup and
// suite derivation excluded).
func runExperiment1At(t *testing.T, parallelism int) (*analysis.Result, time.Duration) {
	t.Helper()
	cfg := experiments.Default()
	cfg.Parallelism = parallelism
	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	start := time.Now()
	res, err := setup.Experiment1(nil)
	if err != nil {
		t.Fatalf("experiment 1 at parallelism %d: %v", parallelism, err)
	}
	return res, time.Since(start)
}

// speedupAssertion reports whether this machine can honestly assert a
// parallel speedup, and if not, why. Scheduling `workers` goroutine workers
// onto fewer OS CPUs measures contention, not parallelism — on such boxes
// the speedup number is recorded but asserted against nothing, and the
// recorded reason documents the gap so a CI reader knows the assertion was
// skipped deliberately rather than silently.
func speedupAssertion(workers int) (enforce bool, reason string) {
	cpus := runtime.NumCPU()
	if cpus < 4 {
		return false, fmt.Sprintf("skipped: %d CPU(s) < 4 — no parallel speedup available on this machine", cpus)
	}
	if cpus < workers {
		return false, fmt.Sprintf("skipped: %d CPUs < %d workers — oversubscribed, wall clock measures contention", cpus, workers)
	}
	return true, "enforced: >=2x at 4 workers"
}

// TestParallelCampaignIdenticalKillMatrix is the acceptance check for the
// sharded mutation engine: the parallel campaign must produce the exact
// kill matrix of the serial campaign — same mutants in the same order,
// same verdict, same kill reason, same killing case, same reached/infected
// flags. Wall-clock speedup is measured and recorded (BENCH_PARALLEL.json
// via -update-bench); the ≥2x assertion only applies when the machine can
// honestly deliver one (see speedupAssertion), and the recorded JSON keeps
// the actual runtime.NumCPU() plus the enforcement decision either way.
func TestParallelCampaignIdenticalKillMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Table 2 campaign twice")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	serial, serialDur := runExperiment1At(t, 1)
	par, parDur := runExperiment1At(t, workers)

	if len(par.Mutants) != len(serial.Mutants) {
		t.Fatalf("mutant counts differ: serial %d, parallel %d", len(serial.Mutants), len(par.Mutants))
	}
	for i := range serial.Mutants {
		want, got := serial.Mutants[i], par.Mutants[i]
		if got.Mutant.ID != want.Mutant.ID {
			t.Fatalf("mutant %d: ID %q vs %q — enumeration order diverged", i, got.Mutant.ID, want.Mutant.ID)
		}
		if got.Killed != want.Killed || got.Reason != want.Reason ||
			got.KillingCase != want.KillingCase ||
			got.Reached != want.Reached || got.Infected != want.Infected {
			t.Errorf("mutant %s verdict diverged:\n serial: killed=%v reason=%v case=%s reached=%v infected=%v\n parallel: killed=%v reason=%v case=%s reached=%v infected=%v",
				want.Mutant.ID,
				want.Killed, want.Reason, want.KillingCase, want.Reached, want.Infected,
				got.Killed, got.Reason, got.KillingCase, got.Reached, got.Infected)
		}
	}

	speedup := float64(serialDur) / float64(parDur)
	enforce, reason := speedupAssertion(workers)
	t.Logf("campaign: %d mutants; serial %v, parallel(%d) %v, speedup %.2fx on %d CPUs (%s)",
		len(serial.Mutants), serialDur, workers, parDur, speedup, runtime.NumCPU(), reason)
	if enforce && speedup < 2.0 {
		t.Errorf("parallel campaign speedup %.2fx < 2x with %d workers on %d CPUs", speedup, workers, runtime.NumCPU())
	}

	if *updateBenchJSON {
		killed := 0
		for _, m := range serial.Mutants {
			if m.Killed {
				killed++
			}
		}
		record := map[string]any{
			"benchmark":         "experiment-1 mutation campaign (Table 2), serial vs parallel",
			"command":           "go test -run TestParallelCampaignIdenticalKillMatrix -update-bench .",
			"cpus":              runtime.NumCPU(),
			"gomaxprocs":        runtime.GOMAXPROCS(0),
			"workers":           workers,
			"mutants":           len(serial.Mutants),
			"killed":            killed,
			"serial_ms":         serialDur.Milliseconds(),
			"parallel_ms":       parDur.Milliseconds(),
			"speedup":           speedup,
			"speedup_assertion": reason,
			"kill_matrix":       "identical (asserted element-wise by this test)",
			"os_arch":           runtime.GOOS + "/" + runtime.GOARCH,
		}
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_PARALLEL.json", append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
