package bit

import "fmt"

// Contract bundles the design-by-contract assertions of one method: a
// precondition over the arguments, a postcondition over the result, and the
// class invariant checked on entry and exit (Meyer's method, which the paper
// adopts for its oracle in §2.2). A Contract is the producer-side
// declaration; Checked runs a method body inside it.
type Contract struct {
	// Name identifies the method, for violation messages.
	Name string
	// Pre validates the call arguments; nil means no precondition.
	Pre func(args []any) error
	// Post validates the results; nil means no postcondition.
	Post func(args, results []any) error
}

// Checked executes body under the contract: invariant before, precondition,
// body, postcondition, invariant after. invariant may be nil. The first
// failure aborts the sequence, matching the paper's driver which stops a
// test case at the first assertion violation.
func (c Contract) Checked(invariant func() error, args []any, body func() ([]any, error)) ([]any, error) {
	if invariant != nil {
		if err := invariant(); err != nil {
			return nil, fmt.Errorf("entering %s: %w", c.Name, err)
		}
	}
	if c.Pre != nil {
		if err := c.Pre(args); err != nil {
			return nil, err
		}
	}
	results, err := body()
	if err != nil {
		return results, err
	}
	if c.Post != nil {
		if err := c.Post(args, results); err != nil {
			return results, err
		}
	}
	if invariant != nil {
		if err := invariant(); err != nil {
			return results, fmt.Errorf("leaving %s: %w", c.Name, err)
		}
	}
	return results, nil
}
