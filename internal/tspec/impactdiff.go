package tspec

import "sort"

// This file extends the inheritance-oriented Classify to arbitrary edits of
// one spec: DiffSpecs compares two revisions of the same class (no
// superclass relation required) and reports exactly which methods' test
// cases are invalidated, and why. It is the front end of the test-impact
// engine (internal/impact): a method left out of the delta keeps its cached
// verdicts; a method in the delta forces re-execution of every transaction
// that exercises it.

// Impact reasons, ordered by precedence (the first matching reason wins).
const (
	// ReasonAdded: the method does not exist in the old spec.
	ReasonAdded = "added"
	// ReasonSignatureChanged: name/return/category/parameter structure moved
	// — the non-domain part of the signature Harrold's model freezes.
	ReasonSignatureChanged = "signature-changed"
	// ReasonDomainChanged: same structure, but a parameter's declared value
	// domain moved, so generated inputs may differ.
	ReasonDomainChanged = "domain-changed"
	// ReasonRedefined: newly listed in the spec's Redefined clause — the
	// implementation was replaced without a spec change, which still
	// invalidates observed behavior.
	ReasonRedefined = "redefined"
	// ReasonUsesModifiedAttribute: the method Uses an attribute that is newly
	// listed in ModifiedAttributes or whose declared domain changed (§3.4.2:
	// methods using a modified attribute are considered modified).
	ReasonUsesModifiedAttribute = "uses-modified-attribute"
)

// MethodDelta is one impacted method with the reason its verdicts are
// invalidated.
type MethodDelta struct {
	Method string `json:"method"`
	Reason string `json:"reason"`
}

// SpecDelta is the result of DiffSpecs: everything about the edit that the
// impact engine needs to partition a re-run.
type SpecDelta struct {
	// Impacted lists methods (present in the new spec) whose cached results
	// are invalid, sorted by method name.
	Impacted []MethodDelta `json:"impacted,omitempty"`
	// Removed lists methods present only in the old spec, sorted. Their
	// cases vanish from the generated suite on their own; the field exists
	// for reporting.
	Removed []string `json:"removed,omitempty"`
	// ModelChanged reports that the TFM (nodes or edges) differs, so the
	// transaction enumeration itself may have moved. The impact engine does
	// not need a per-edge attribution: regenerated transactions reveal
	// themselves by case-content comparison.
	ModelChanged bool `json:"modelChanged,omitempty"`
}

// Empty reports a no-op edit: nothing impacted, nothing removed, same model.
func (d SpecDelta) Empty() bool {
	return len(d.Impacted) == 0 && len(d.Removed) == 0 && !d.ModelChanged
}

// ImpactedSet returns the impacted method names as a set.
func (d SpecDelta) ImpactedSet() map[string]bool {
	out := make(map[string]bool, len(d.Impacted))
	for _, m := range d.Impacted {
		out[m.Method] = true
	}
	return out
}

// ImpactedReason returns the recorded reason for an impacted method, or "".
func (d SpecDelta) ImpactedReason(method string) string {
	for _, m := range d.Impacted {
		if m.Method == method {
			return m.Reason
		}
	}
	return ""
}

// DiffSpecs compares two revisions of one class and computes the impacted
// method set. Unlike Classify it imposes no superclass relation — old and
// new are the same component before and after an arbitrary edit. A method in
// the new spec is impacted when it is new, its signature or a parameter
// domain changed, it is newly redefined, or it uses an attribute that was
// modified (newly listed in ModifiedAttributes, or whose declared domain
// changed between revisions). Methods are keyed by name, like Classify.
func DiffSpecs(old, new *Spec) SpecDelta {
	var d SpecDelta

	oldRedef := map[string]bool{}
	for _, name := range old.Redefined {
		oldRedef[name] = true
	}
	newRedef := map[string]bool{}
	for _, name := range new.Redefined {
		newRedef[name] = true
	}
	// An attribute counts as modified when newly flagged, when its declared
	// domain changed, or when it is new — any of these can change invariant
	// checking and reporter behavior for the methods using it.
	oldModAttr := map[string]bool{}
	for _, name := range old.ModifiedAttributes {
		oldModAttr[name] = true
	}
	modAttrs := map[string]bool{}
	for _, name := range new.ModifiedAttributes {
		if !oldModAttr[name] {
			modAttrs[name] = true
		}
	}
	for _, a := range new.Attributes {
		oldA, ok := old.AttributeByName(a.Name)
		if !ok || !sameDomainDecl(oldA.Domain, a.Domain) {
			modAttrs[a.Name] = true
		}
	}

	for _, m := range new.Methods {
		oldM, inOld := old.MethodByName(m.Name)
		switch {
		case !inOld:
			d.Impacted = append(d.Impacted, MethodDelta{m.Name, ReasonAdded})
		case !sameSignatureShape(oldM, m):
			d.Impacted = append(d.Impacted, MethodDelta{m.Name, ReasonSignatureChanged})
		case !sameSignature(oldM, m):
			d.Impacted = append(d.Impacted, MethodDelta{m.Name, ReasonDomainChanged})
		case newRedef[m.Name] && !oldRedef[m.Name]:
			d.Impacted = append(d.Impacted, MethodDelta{m.Name, ReasonRedefined})
		case usesModified(m, modAttrs):
			d.Impacted = append(d.Impacted, MethodDelta{m.Name, ReasonUsesModifiedAttribute})
		}
	}
	sort.Slice(d.Impacted, func(i, j int) bool { return d.Impacted[i].Method < d.Impacted[j].Method })

	for _, m := range old.Methods {
		if _, inNew := new.MethodByName(m.Name); !inNew {
			d.Removed = append(d.Removed, m.Name)
		}
	}
	sort.Strings(d.Removed)

	d.ModelChanged = modelChanged(old, new)
	return d
}

// sameSignatureShape checks the non-domain part of sameSignature: name,
// return, category and the ordered parameter names. Splitting it out lets
// DiffSpecs distinguish a structural signature change from a pure domain
// move.
func sameSignatureShape(a, b Method) bool {
	if a.Name != b.Name || a.Return != b.Return || a.Category != b.Category {
		return false
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i].Name != b.Params[i].Name {
			return false
		}
	}
	return true
}

func modelChanged(old, new *Spec) bool {
	if len(old.Nodes) != len(new.Nodes) || len(old.Edges) != len(new.Edges) {
		return true
	}
	for i, n := range new.Nodes {
		o := old.Nodes[i]
		if o.ID != n.ID || o.Start != n.Start || len(o.Methods) != len(n.Methods) {
			return true
		}
		for j := range n.Methods {
			if o.Methods[j] != n.Methods[j] {
				return true
			}
		}
	}
	for i, e := range new.Edges {
		if old.Edges[i] != e {
			return true
		}
	}
	return false
}
