package domain

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindInt, "int"},
		{KindFloat, "float"},
		{KindString, "string"},
		{KindBool, "bool"},
		{KindObject, "object"},
		{KindPointer, "pointer"},
		{KindNil, "nil"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindString, KindBool, KindObject, KindPointer, KindNil} {
		if !k.Valid() {
			t.Errorf("kind %s should be valid", k)
		}
	}
	if Kind(0).Valid() {
		t.Error("zero kind should be invalid")
	}
	if Kind(42).Valid() {
		t.Error("kind 42 should be invalid")
	}
}

func TestParseKind(t *testing.T) {
	tests := []struct {
		in      string
		want    Kind
		wantErr bool
	}{
		{"int", KindInt, false},
		{"Int", KindInt, false},
		{"FLOAT", KindFloat, false},
		{"string", KindString, false},
		{"String", KindString, false},
		{"bool", KindBool, false},
		{"object", KindObject, false},
		{"pointer", KindPointer, false},
		{"nil", KindNil, false},
		{"range", KindInt, false}, // t-spec synonym
		{"set", KindInt, false},   // t-spec synonym
		{"widget", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseKind(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseKind(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseKind(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if n := Int(42).MustInt(); n != 42 {
		t.Errorf("Int(42).MustInt() = %d", n)
	}
	if f := Float(2.5).MustFloat(); f != 2.5 {
		t.Errorf("Float(2.5).MustFloat() = %g", f)
	}
	if s := Str("hi").MustString(); s != "hi" {
		t.Errorf("Str(hi).MustString() = %q", s)
	}
	b, err := Bool(true).AsBool()
	if err != nil || !b {
		t.Errorf("Bool(true).AsBool() = %v, %v", b, err)
	}
	// Cross-kind accessors fail.
	if _, err := Str("x").AsInt(); err == nil {
		t.Error("AsInt on string should fail")
	}
	if _, err := Int(1).AsString(); err == nil {
		t.Error("AsString on int should fail")
	}
	if _, err := Str("x").AsBool(); err == nil {
		t.Error("AsBool on string should fail")
	}
	// Int converts to float losslessly.
	f, err := Int(7).AsFloat()
	if err != nil || f != 7 {
		t.Errorf("Int(7).AsFloat() = %g, %v", f, err)
	}
}

func TestValueNilAndZero(t *testing.T) {
	if !Nil().IsNil() {
		t.Error("Nil().IsNil() = false")
	}
	if !Pointer(nil).IsNil() {
		t.Error("Pointer(nil) should be nil")
	}
	if Pointer(&struct{}{}).IsNil() {
		t.Error("non-nil pointer should not be nil")
	}
	var zero Value
	if !zero.IsZero() {
		t.Error("zero Value should report IsZero")
	}
	if Int(0).IsZero() {
		t.Error("Int(0) should not report IsZero")
	}
}

func TestValueEqual(t *testing.T) {
	ref1 := &struct{ x int }{1}
	ref2 := &struct{ x int }{1}
	tests := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // kinds differ
		{Float(1.5), Float(1.5), true},
		{Float(math.NaN()), Float(math.NaN()), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Nil(), Nil(), true},
		{Object(ref1), Object(ref1), true},
		{Object(ref1), Object(ref2), false}, // reference identity
		{Pointer(ref1), Pointer(ref1), true},
	}
	for i, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("case %d: %v.Equal(%v) = %v, want %v", i, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b    Value
		want    int
		wantErr bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(1), 1, false},
		{Int(2), Int(2), 0, false},
		{Float(1.5), Float(2.5), -1, false},
		{Int(1), Float(1.5), -1, false}, // cross numeric
		{Float(3), Int(2), 1, false},
		{Str("a"), Str("b"), -1, false},
		{Bool(false), Bool(true), -1, false},
		{Bool(true), Bool(false), 1, false},
		{Bool(true), Bool(true), 0, false},
		{Nil(), Nil(), 0, true},         // nil is unordered
		{Int(1), Str("a"), 0, true},     // mismatched kinds
		{Object(1), Object(1), 0, true}, // objects unordered
	}
	for i, tt := range tests {
		got, err := tt.a.Compare(tt.b)
		if (err != nil) != tt.wantErr {
			t.Errorf("case %d: Compare error = %v, wantErr %v", i, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("case %d: %v.Compare(%v) = %d, want %d", i, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(-3), "-3"},
		{Float(0.5), "0.5"},
		{Str(`a"b`), `"a\"b"`},
		{Bool(true), "true"},
		{Nil(), "nil"},
		{Value{}, "<invalid>"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Int(1), Int(2)}
	SortValues(vs)
	for i, want := range []int64{1, 2, 3} {
		if vs[i].MustInt() != want {
			t.Fatalf("after sort, vs[%d] = %v, want %d", i, vs[i], want)
		}
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	values := []Value{
		Int(-42), Int(math.MaxInt64), Int(math.MinInt64),
		Float(3.14159), Float(0), Float(-1e300),
		Str(""), Str("hello world"), Str("unicode: héllo"),
		Bool(true), Bool(false),
		Nil(),
	}
	for _, v := range values {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !v.Equal(back) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestValueJSONRoundTripProperty(t *testing.T) {
	prop := func(i int64, f float64, s string, b bool, pick uint8) bool {
		var v Value
		switch pick % 5 {
		case 0:
			v = Int(i)
		case 1:
			if math.IsNaN(f) {
				f = 0
			}
			v = Float(f)
		case 2:
			v = Str(s)
		case 3:
			v = Bool(b)
		case 4:
			v = Nil()
		}
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return v.Equal(back)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValueJSONOpaqueReferences(t *testing.T) {
	v := Object(&struct{}{})
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal object: %v", err)
	}
	var back Value
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal object: %v", err)
	}
	if back.Kind() != KindObject {
		t.Errorf("round-tripped object kind = %s", back.Kind())
	}
	if back.Ref() != nil {
		t.Error("deserialized object reference should be an unresolved placeholder")
	}
}

func TestValueJSONErrors(t *testing.T) {
	var v Value
	if _, err := json.Marshal(v); err == nil {
		t.Error("marshaling invalid value should fail")
	}
	bad := []string{
		`{"kind":"widget"}`,
		`{"kind":"int"}`,    // missing payload
		`{"kind":"float"}`,  // missing payload
		`{"kind":"string"}`, // missing payload
		`{"kind":"bool"}`,   // missing payload
		`{"kind":"float","float":"zzz"}`,
		`not json`,
	}
	for _, s := range bad {
		var u Value
		if err := json.Unmarshal([]byte(s), &u); err == nil {
			t.Errorf("unmarshal %q should fail", s)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	prop := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, err1 := x.Compare(y)
		c2, err2 := y.Compare(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
