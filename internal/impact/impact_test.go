package impact_test

import (
	"encoding/json"
	"testing"

	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/impact"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

func runner(t *testing.T, name string, st store.Backend) *impact.Runner {
	t.Helper()
	target, err := core.LookupTarget(name)
	if err != nil {
		t.Fatalf("LookupTarget(%s): %v", name, err)
	}
	comp := target.New(nil)
	return &impact.Runner{
		Factory:   comp.Factory,
		Providers: comp.Providers,
		Gen:       driver.Options{Seed: 42},
		Store:     st,
	}
}

// perturbDomain clones the spec and degenerates the first range-typed
// parameter domain it finds, returning the owning method's name.
func perturbDomain(t *testing.T, s *tspec.Spec) (*tspec.Spec, string) {
	t.Helper()
	cp := s.Clone()
	for i, m := range cp.Methods {
		for j, p := range m.Params {
			if p.Domain.Kind == tspec.DomRange && p.Domain.Lo != p.Domain.Hi {
				cp.Methods[i].Params[j].Domain.Hi = p.Domain.Lo
				return cp, m.Name
			}
		}
	}
	t.Fatalf("spec %s has no range parameter to perturb", s.Class.Name)
	return nil, ""
}

// perturbReturn clones the spec and changes one non-constructor method's
// return type — a spec edit that leaves generated cases byte-identical.
func perturbReturn(t *testing.T, s *tspec.Spec) (*tspec.Spec, string) {
	t.Helper()
	cp := s.Clone()
	for i, m := range cp.Methods {
		if m.Category != tspec.CatConstructor && m.Category != tspec.CatDestructor {
			cp.Methods[i].Return = m.Return + "X"
			return cp, m.Name
		}
	}
	t.Fatalf("spec %s has no perturbable method", s.Class.Name)
	return nil, ""
}

// finalBytes canonicalizes a suite report for comparison.
func finalBytes(t *testing.T, rep *testexec.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshaling report: %v", err)
	}
	return string(b)
}

// coldRun executes the suite from scratch on a fresh factory.
func coldRun(t *testing.T, name string, suite *driver.Suite) *testexec.Report {
	t.Helper()
	target, err := core.LookupTarget(name)
	if err != nil {
		t.Fatal(err)
	}
	comp := target.New(nil)
	rep, err := comp.RunSuite(suite, testexec.Options{})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	return rep
}

// coverageBytes is the cold-path coverage artifact for comparison.
func coverageBytes(t *testing.T, name string, suite *driver.Suite, rep *testexec.Report) string {
	t.Helper()
	target, err := core.LookupTarget(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := target.New(nil).Spec().TFM()
	if err != nil {
		t.Fatal(err)
	}
	art, err := cover.FromRun(g, suite, rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// An identical-spec diff keeps every case. The first run executes everything
// (cold store), the second replays 100% warm — and both match a cold run.
func TestIdenticalSpecFullWarmReplay(t *testing.T) {
	st := store.NewMem()
	r := runner(t, "Account", st)
	spec := r.Factory.Spec()

	res1, err := r.Run(spec, spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	n := len(res1.Suite.Cases)
	if res1.Report.Kept != n || res1.Report.Rerun != 0 || res1.Report.Regenerated != 0 {
		t.Fatalf("partition = %d/%d/%d, want %d/0/0",
			res1.Report.Kept, res1.Report.Rerun, res1.Report.Regenerated, n)
	}
	if res1.Report.CacheHits != 0 || res1.Report.CacheMisses != n {
		t.Fatalf("cold accounting = %d hits/%d misses, want 0/%d",
			res1.Report.CacheHits, res1.Report.CacheMisses, n)
	}
	if !res1.Report.Delta.Empty() {
		t.Fatalf("identical specs produced a delta: %+v", res1.Report.Delta)
	}

	res2, err := r.Run(spec, spec)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if res2.Report.CacheHits != n || res2.Report.CacheMisses != 0 {
		t.Fatalf("warm accounting = %d hits/%d misses, want %d/0",
			res2.Report.CacheHits, res2.Report.CacheMisses, n)
	}

	cold := coldRun(t, "Account", res2.Suite)
	want := finalBytes(t, cold)
	if got := finalBytes(t, res1.Final); got != want {
		t.Error("cold-store impact run diverged from cold run")
	}
	if got := finalBytes(t, res2.Final); got != want {
		t.Error("warm impact run diverged from cold run")
	}
}

// A domain change invalidates exactly the cases exercising the method; the
// rest replay warm on a primed store, and the final report still matches a
// cold full run on the new spec.
func TestDomainChangePartialRerun(t *testing.T) {
	st := store.NewMem()
	r := runner(t, "Account", st)
	spec := r.Factory.Spec()
	old, method := perturbDomain(t, spec)

	// Prime the store with an identical-spec run.
	if _, err := r.Run(spec, spec); err != nil {
		t.Fatalf("priming run: %v", err)
	}

	res, err := r.Run(old, spec)
	if err != nil {
		t.Fatalf("impact run: %v", err)
	}
	if got := res.Report.Delta.ImpactedReason(method); got != tspec.ReasonDomainChanged {
		t.Fatalf("delta reason for %s = %q, want %q", method, got, tspec.ReasonDomainChanged)
	}
	touching := 0
	for i, tc := range res.Suite.Cases {
		touches := false
		for _, m := range tc.Methods() {
			if m == method {
				touches = true
			}
		}
		dec := res.Report.Cases[i].Decision
		if touches {
			touching++
			if dec == impact.DecisionKept {
				t.Errorf("case %s exercises %s but was kept", tc.ID, method)
			}
		} else if dec != impact.DecisionKept {
			t.Errorf("case %s does not exercise %s but was %s", tc.ID, method, dec)
		}
	}
	if touching == 0 {
		t.Fatalf("no case exercises %s; perturbation proves nothing", method)
	}
	if res.Report.CacheHits != res.Report.Kept {
		t.Errorf("hits = %d, want every kept case warm (%d)", res.Report.CacheHits, res.Report.Kept)
	}
	if res.Report.CacheMisses != res.Report.Rerun+res.Report.Regenerated {
		t.Errorf("misses = %d, want rerun+regenerated = %d",
			res.Report.CacheMisses, res.Report.Rerun+res.Report.Regenerated)
	}

	cold := coldRun(t, "Account", res.Suite)
	if finalBytes(t, res.Final) != finalBytes(t, cold) {
		t.Error("impact-driven report diverged from cold run on the new spec")
	}
	coldArt := coverageBytes(t, "Account", res.Suite, cold)
	gotArt, err := res.Coverage.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotArt) != coldArt {
		t.Error("impact-driven coverage artifact diverged from cold run's")
	}
}

// A redefinition-style edit (changed return type) leaves every case
// byte-identical but still forces re-execution of the method's cases: warm
// entries exist, yet rerun cases must not be served from the store.
func TestRerunBypassesWarmStore(t *testing.T) {
	st := store.NewMem()
	r := runner(t, "Account", st)
	spec := r.Factory.Spec()
	old, method := perturbReturn(t, spec)

	if _, err := r.Run(spec, spec); err != nil {
		t.Fatalf("priming run: %v", err)
	}
	res, err := r.Run(old, spec)
	if err != nil {
		t.Fatalf("impact run: %v", err)
	}
	if res.Report.Regenerated != 0 {
		t.Errorf("regenerated = %d, want 0 (cases are byte-identical)", res.Report.Regenerated)
	}
	if res.Report.Rerun == 0 {
		t.Fatalf("no reruns although %s changed", method)
	}
	if res.Report.CacheMisses != res.Report.Rerun {
		t.Errorf("misses = %d, want %d (every rerun executes despite warm entries)",
			res.Report.CacheMisses, res.Report.Rerun)
	}
	for i, c := range res.Report.Cases {
		if c.Decision == impact.DecisionRerun && c.Warm {
			t.Errorf("case %s served warm despite rerun decision", res.Report.Cases[i].CaseID)
		}
	}
}

// Parallel execution must not change a single byte of either artifact.
func TestParallelRunIdentical(t *testing.T) {
	spec := runner(t, "Account", store.NewMem()).Factory.Spec()
	old, _ := perturbDomain(t, spec)

	serial := runner(t, "Account", store.NewMem())
	serial.Parallelism = 1
	parallel := runner(t, "Account", store.NewMem())
	parallel.Parallelism = 4

	a, err := serial.Run(old, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Run(old, spec)
	if err != nil {
		t.Fatal(err)
	}
	if finalBytes(t, a.Final) != finalBytes(t, b.Final) {
		t.Error("parallel final report diverged from serial")
	}
	ea, _ := a.Report.Encode()
	eb, _ := b.Report.Encode()
	if string(ea) != string(eb) {
		t.Error("parallel impact artifact diverged from serial")
	}
}

// A disabled store degrades gracefully: everything executes, nothing warms.
func TestDisabledStoreExecutesEverything(t *testing.T) {
	r := runner(t, "Account", nil)
	spec := r.Factory.Spec()
	res, err := r.Run(spec, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CacheHits != 0 || res.Report.CacheMisses != len(res.Suite.Cases) {
		t.Fatalf("accounting = %d/%d, want 0/%d",
			res.Report.CacheHits, res.Report.CacheMisses, len(res.Suite.Cases))
	}
	cold := coldRun(t, "Account", res.Suite)
	if finalBytes(t, res.Final) != finalBytes(t, cold) {
		t.Error("storeless impact run diverged from cold run")
	}
}

// Mutant accounting partitions by impacted-method membership.
func TestMutantAccounting(t *testing.T) {
	r := runner(t, "Account", store.NewMem())
	spec := r.Factory.Spec()
	old, method := perturbReturn(t, spec)
	r.MutantMethods = []string{method, method, "Other", "Other", "Other"}
	res, err := r.Run(old, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MutantsInvalidated != 2 || res.Report.MutantsKept != 3 {
		t.Fatalf("mutants = %d invalidated/%d kept, want 2/3",
			res.Report.MutantsInvalidated, res.Report.MutantsKept)
	}
}

// The artifact round-trips and renders.
func TestReportRoundTripAndRender(t *testing.T) {
	r := runner(t, "Account", store.NewMem())
	spec := r.Factory.Spec()
	old, _ := perturbDomain(t, spec)
	res, err := r.Run(old, spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := impact.Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	raw2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Error("artifact did not round-trip byte-identically")
	}
	var sb jsonBuffer
	if err := res.Report.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if len(sb) == 0 {
		t.Error("Render produced no output")
	}
	if _, err := impact.Decode([]byte("{\"version\":99}")); err == nil {
		t.Error("Decode accepted an unsupported version")
	}
}

type jsonBuffer []byte

func (b *jsonBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
