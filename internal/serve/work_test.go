// Distributed-campaign tests: byte-identity of the 2-worker run against a
// single-process baseline, the shard lease/epoch protocol, and the
// submission-time store requirement. These are the in-process versions of
// what CI's fleet job asserts across real processes.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"concat/internal/store"
)

// fetchCoverage blocks on the coverage endpoint until the job completes.
func fetchCoverage(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/coverage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coverage %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// postLease asks the coordinator for one shard lease; ok=false on 204.
func postLease(t *testing.T, ts *httptest.Server) (ShardLease, bool) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/work/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return ShardLease{}, false
	case http.StatusOK:
		var lease ShardLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			t.Fatal(err)
		}
		return lease, true
	default:
		t.Fatalf("lease: HTTP %d", resp.StatusCode)
		return ShardLease{}, false
	}
}

// postDone reports a shard completion and returns the HTTP status code.
func postDone(t *testing.T, ts *httptest.Server, lease ShardLease, errMsg string) int {
	t.Helper()
	body, err := json.Marshal(ShardDone{Epoch: lease.Epoch, Error: errMsg})
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/work/" + lease.Job + "/shards/" + strconv.Itoa(lease.Shard)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestDistributedTwoWorkersByteIdentical is the tentpole property: two
// remote workers pulling shards over HTTP and publishing verdicts through
// the coordinator's /store mount produce a report and coverage artifact
// byte-identical to a single-process run, and the coordinator's merge is
// pure cache replay (zero misses).
func TestDistributedTwoWorkersByteIdentical(t *testing.T) {
	// Single-process baseline on its own server with no store at all.
	_, baseTS := newTestServer(t, Config{})
	baseSt, code := submit(t, baseTS, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: HTTP %d", code)
	}
	baseReport := fetchReport(t, baseTS, baseSt.ID)
	baseCover := fetchCoverage(t, baseTS, baseSt.ID)

	fs, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: fs, ShardLease: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{
			Coordinator: ts.URL,
			Store:       store.NewRemote(ts.URL, nil),
			Parallelism: 1,
			Poll:        10 * time.Millisecond,
		})
		go w.Run(ctx)
	}

	st, code := submit(t, ts, Request{Component: "Account", Distributed: true, Shards: 2})
	if code != http.StatusAccepted {
		t.Fatalf("distributed submit: HTTP %d", code)
	}
	report := fetchReport(t, ts, st.ID)
	if !bytes.Equal(report, baseReport) {
		t.Errorf("2-worker distributed report deviates from single-process baseline:\n--- distributed ---\n%s\n--- baseline ---\n%s", report, baseReport)
	}
	cover := fetchCoverage(t, ts, st.ID)
	if !bytes.Equal(cover, baseCover) {
		t.Errorf("2-worker coverage artifact deviates from single-process baseline")
	}
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("distributed campaign state = %s (%s)", final.State, final.Error)
	}
	// The merge replayed entirely from worker-published verdicts.
	if final.CacheHits == 0 || final.CacheMisses != 0 {
		t.Errorf("merge run cache hits/misses = %d/%d, want all hits", final.CacheHits, final.CacheMisses)
	}
	if final.Mutants == 0 || final.Killed == 0 {
		t.Errorf("distributed campaign found no mutants/kills: %+v", final)
	}
}

// TestShardLeaseReclaimAndStaleEpoch drives the lease protocol by hand: a
// worker that leases a shard and dies loses it after the shard lease
// expires; its stale completion is rejected by epoch; and the merge heals
// the missing work by executing it locally.
func TestShardLeaseReclaimAndStaleEpoch(t *testing.T) {
	fs, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: fs, ShardLease: 50 * time.Millisecond, Lease: 30 * time.Second})
	st, code := submit(t, ts, Request{Component: "Account", Distributed: true, Shards: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	lease1, ok := postLease(t, ts)
	if !ok {
		t.Fatal("no lease for a freshly submitted distributed campaign")
	}
	if lease1.Job != st.ID || lease1.Shards != 1 || lease1.Shard != 0 {
		t.Fatalf("unexpected lease: %+v", lease1)
	}
	// While the lease is live no second lease exists.
	if _, ok := postLease(t, ts); ok {
		t.Fatal("coordinator double-leased a held shard")
	}
	// Worker 1 "dies". Past the shard lease the shard is re-leased with a
	// newer epoch.
	time.Sleep(120 * time.Millisecond)
	lease2, ok := postLease(t, ts)
	if !ok {
		t.Fatal("expired shard was not re-leased")
	}
	if lease2.Shard != 0 || lease2.Epoch <= lease1.Epoch {
		t.Fatalf("re-lease = %+v, want same shard with a newer epoch than %d", lease2, lease1.Epoch)
	}
	// The dead worker's late completion must be rejected...
	if code := postDone(t, ts, lease1, ""); code != http.StatusConflict {
		t.Errorf("stale-epoch completion = HTTP %d, want 409", code)
	}
	// ...and the live lease's accepted, even though it did no real work:
	// the merge executes whatever the store is missing.
	if code := postDone(t, ts, lease2, ""); code != http.StatusNoContent {
		t.Errorf("current-epoch completion = HTTP %d, want 204", code)
	}
	report := fetchReport(t, ts, st.ID)
	if want := cliTable(t); !bytes.Equal(report, want) {
		t.Errorf("self-healed distributed report deviates from CLI table")
	}
	final := getStatus(t, ts, st.ID)
	if final.CacheMisses == 0 {
		t.Errorf("merge after a no-op worker should have executed mutants itself, got %d misses", final.CacheMisses)
	}
}

// TestShardFailureExhaustsBudgetAndFailsJob: a shard that keeps reporting
// failure is re-leased until the attempt budget (Retry.Attempts) is spent,
// then the whole campaign fails deterministically.
func TestShardFailureExhaustsBudgetAndFailsJob(t *testing.T) {
	fs, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: fs, Retry: fastRetry(2), Lease: 30 * time.Second})
	st, code := submit(t, ts, Request{Component: "Account", Distributed: true, Shards: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	for i := 0; i < 2; i++ {
		lease, ok := postLease(t, ts)
		if !ok {
			t.Fatalf("no lease on attempt %d", i+1)
		}
		if code := postDone(t, ts, lease, "boom"); code != http.StatusNoContent {
			t.Fatalf("failure report %d = HTTP %d", i+1, code)
		}
	}
	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitDone(t, j)
	final := getStatus(t, ts, st.ID)
	if final.State != StateFailed {
		t.Errorf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "boom") {
		t.Errorf("terminal error %q does not carry the shard failure cause", final.Error)
	}
}

// TestDistributedRequiresStore: a coordinator without a verdict store must
// reject distributed submissions up front with 400 — accepting one would
// strand it, since workers would have nowhere to publish.
func TestDistributedRequiresStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, code := submit(t, ts, Request{Component: "Account", Distributed: true})
	if code != http.StatusBadRequest {
		t.Errorf("distributed submit without store = HTTP %d, want 400", code)
	}
}

// TestWorkLeaseNoWork: an idle coordinator answers lease polls with 204.
func TestWorkLeaseNoWork(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, ok := postLease(t, ts); ok {
		t.Error("idle coordinator handed out a lease")
	}
}

// TestShardProgressInStatus: while shards are outstanding, the status
// endpoint reports the distributed campaign's shard progress.
func TestShardProgressInStatus(t *testing.T) {
	fs, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: fs, Lease: 30 * time.Second})
	st, code := submit(t, ts, Request{Component: "Account", Distributed: true, Shards: 2})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	lease, ok := postLease(t, ts)
	if !ok {
		t.Fatal("no lease")
	}
	// One of two shards done: progress must be visible while running.
	if code := postDone(t, ts, lease, ""); code != http.StatusNoContent {
		t.Fatalf("completion = HTTP %d", code)
	}
	mid := getStatus(t, ts, st.ID)
	if mid.Shards != 2 || mid.ShardsDone != 1 {
		t.Errorf("mid-campaign status shards = %d/%d, want 1/2 done", mid.ShardsDone, mid.Shards)
	}
	// Finish the campaign so server shutdown doesn't wait out the backstop.
	lease2, ok := postLease(t, ts)
	if !ok {
		t.Fatal("no lease for the second shard")
	}
	if code := postDone(t, ts, lease2, ""); code != http.StatusNoContent {
		t.Fatalf("completion = HTTP %d", code)
	}
	fetchReport(t, ts, st.ID)
	final := getStatus(t, ts, st.ID)
	if final.Shards != 0 || final.ShardsDone != 0 {
		t.Errorf("terminal status still advertises shard progress: %d/%d", final.ShardsDone, final.Shards)
	}
}
