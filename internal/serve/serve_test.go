package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"concat/internal/analysis"
	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/obs"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req Request) (Status, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// fetchReport blocks on the report endpoint until the job completes.
func fetchReport(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	return body
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// cliTable renders the byte-identity reference for service reports: the
// table `concat mutate -component Account` would print for the same request
// plus the one coverage-summary line the service appends.
func cliTable(t *testing.T) []byte {
	t.Helper()
	target, err := core.LookupTarget("Account")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := target.New(nil).GenerateSuite(driver.Options{
		Seed: 42, MaxAlternatives: 4, Enum: tfm.EnumOptions{LoopBound: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MutationRunOpts("Account", suite, nil, nil,
		core.MutationOptions{Exec: testexec.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Tabulate().Render(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := target.New(nil).Spec().TFM()
	if err != nil {
		t.Fatal(err)
	}
	art, err := cover.FromCampaign(g, suite, res)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(art.Suite.Summary())
	buf.WriteString("\n")
	return buf.Bytes()
}

func TestSubmitReportMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.ID != "c1" {
		t.Errorf("first job ID = %q, want c1", st.ID)
	}
	report := fetchReport(t, ts, st.ID)
	if want := cliTable(t); !bytes.Equal(report, want) {
		t.Errorf("service report differs from CLI table:\n--- service ---\n%s\n--- cli ---\n%s", report, want)
	}
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Errorf("state = %q, want done", final.State)
	}
	if final.Mutants == 0 || final.Killed == 0 {
		t.Errorf("final status lacks totals: %+v", final)
	}
	if !strings.HasPrefix(final.Coverage, "coverage: transactions ") {
		t.Errorf("final status lacks coverage summary: %+v", final)
	}
}

func TestCoverageEndpointServesCanonicalArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/coverage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coverage: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	art, err := cover.Load(resp.Body)
	if err != nil {
		t.Fatalf("artifact did not decode: %v", err)
	}
	if art.Component != "Account" {
		t.Errorf("artifact component = %q", art.Component)
	}
	if art.Suite.TransactionPercent() != 100 {
		t.Errorf("generated driver should reach 100%% transaction coverage, got %s", art.Suite.Summary())
	}
	if len(art.KillMatrix) == 0 || len(art.Operators) == 0 {
		t.Errorf("campaign artifact lacks kill matrix/operators: %d rows, %d operators",
			len(art.KillMatrix), len(art.Operators))
	}
	// The served bytes are the same canonical encoding the artifact re-emits.
	reenc, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/coverage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, reenc) {
		t.Error("served artifact is not canonical: re-encoding changed the bytes")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st})

	// Before any campaign the surface still serves: store and queue gauges.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, line := range []string{
		"concat_store_hits_total 0",
		"concat_store_misses_total 0",
		"concat_queue_depth 0",
		`concat_jobs{state="done"} 0`,
	} {
		if !strings.Contains(string(body), line+"\n") {
			t.Errorf("idle /metrics missing %q:\n%s", line, body)
		}
	}

	job, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	fetchReport(t, ts, job.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"# TYPE concat_case_outcome_total counter",
		`concat_case_outcome_total{outcome="pass"} `,
		"# TYPE concat_mutant_kill_latency_seconds histogram",
		`concat_mutant_kill_latency_seconds_bucket{operator=`,
		`le="+Inf"`,
		"# TYPE concat_store_misses_total counter",
		`concat_jobs{state="done"} 1`,
		"# TYPE concat_campaign_transaction_coverage_ratio gauge",
		fmt.Sprintf("concat_campaign_transaction_coverage_ratio{id=%q,component=\"Account\"} 1", job.ID),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-campaign /metrics missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "concat_store_misses_total ") ||
		strings.Contains(out, "concat_store_misses_total 0\n") {
		t.Errorf("store misses not counted after a cold campaign:\n%s", out)
	}
	// Every exposition line is either a comment or name[{labels}] value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, " ")
		if len(fields) != 2 || fields[0] == "" || fields[1] == "" {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestPprofGatedBehindFlag(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag: HTTP %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with flag: HTTP %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index lacks profiles:\n%s", body)
	}
}

func TestEventsStreamValidates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Start streaming immediately — before the campaign finishes — so the
	// stream exercises the live-follow path, then drains to EOF at job end.
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateNDJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("streamed trace invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("streamed trace is empty")
	}
	if !strings.Contains(string(raw), `"kind":"campaign"`) {
		t.Error("trace lacks the campaign root span")
	}
}

func TestWarmResubmitServedFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st})

	first, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	coldReport := fetchReport(t, ts, first.ID)
	cold := getStatus(t, ts, first.ID)
	if cold.CacheMisses == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold campaign: hits=%d misses=%d", cold.CacheHits, cold.CacheMisses)
	}

	second, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	warmReport := fetchReport(t, ts, second.ID)
	warm := getStatus(t, ts, second.ID)
	if warm.CacheHits != cold.CacheMisses || warm.CacheMisses != 0 {
		t.Errorf("warm campaign: hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, cold.CacheMisses)
	}
	if !bytes.Equal(coldReport, warmReport) {
		t.Errorf("warm report differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldReport, warmReport)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	// The acceptance bar: at least 8 concurrent submissions, all completing,
	// under -race. Distinct seeds make the campaigns genuinely different.
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := submit(t, ts, Request{Component: "Account", Seed: int64(i + 1)})
			if code != http.StatusAccepted {
				t.Errorf("submission %d: HTTP %d", i, code)
				return
			}
			ids[i] = st.ID
			report := fetchReport(t, ts, st.ID)
			if !bytes.Contains(report, []byte("Results obtained for the Account class")) {
				t.Errorf("submission %d: malformed report:\n%s", i, report)
			}
		}(i)
	}
	wg.Wait()
	// All jobs registered, all done, IDs unique.
	seen := map[string]bool{}
	for i, id := range ids {
		if id == "" {
			continue // submission already failed the test above
		}
		if seen[id] {
			t.Errorf("duplicate job ID %s", id)
		}
		seen[id] = true
		if st := getStatus(t, ts, id); st.State != StateDone {
			t.Errorf("job %d (%s) state = %q", i, id, st.State)
		}
	}
}

func TestQueueFullRejectsWith503(t *testing.T) {
	// One worker, depth 1: pin the worker inside a stub campaign, fill the
	// one queue slot, and the next submission must bounce with 503 +
	// Retry-After — deterministically, with no timing in play.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan string, 4)
	release := make(chan struct{})
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		started <- j.ID
		<-release
		return nil, []byte("stub report\n"), nil
	}

	first, code := submit(t, ts, Request{Component: "Account", Seed: 1})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", code)
	}
	if got := <-started; got != first.ID {
		t.Fatalf("worker picked up %s, want %s", got, first.ID)
	}
	// Worker busy; this one occupies the single queue slot.
	second, code := submit(t, ts, Request{Component: "Account", Seed: 2})
	if code != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", code)
	}
	// Queue full: must bounce.
	body, _ := json.Marshal(Request{Component: "Account", Seed: 3})
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	resp.Body.Close()

	close(release)
	// Both accepted jobs still run to completion, and the bounced
	// submission left no job record behind.
	fetchReport(t, ts, first.ID)
	fetchReport(t, ts, second.ID)
	listResp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var all []Status
	if err := json.NewDecoder(listResp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("job list has %d entries, want 2", len(all))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, code := submit(t, ts, Request{Component: "NoSuchComponent"}); code != http.StatusBadRequest {
		t.Errorf("unknown component: HTTP %d, want 400", code)
	}
	if _, code := submit(t, ts, Request{}); code != http.StatusBadRequest {
		t.Errorf("missing component: HTTP %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"component": "Account", "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
	for _, path := range []string{"/campaigns/zz", "/campaigns/zz/report", "/campaigns/zz/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := New(Config{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(Request{Component: "Account"}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestJobIDsSequential(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for i := 1; i <= 3; i++ {
		st, code := submit(t, ts, Request{Component: "Account", Seed: int64(i)})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		if want := fmt.Sprintf("c%d", i); st.ID != want {
			t.Errorf("job %d ID = %q, want %q", i, st.ID, want)
		}
	}
}
