package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"concat/internal/obs"
	"concat/internal/serve/chaos"
)

// TestReadyzStartingThenReady pins the readiness lifecycle: while the
// journal replay is still running /readyz answers 503 (and /healthz keeps
// answering 200 — liveness and readiness are distinct probes), and once the
// start sequence completes /readyz flips to 200.
func TestReadyzStartingThenReady(t *testing.T) {
	release := make(chan struct{})
	s := NewStarting(Config{Faults: &chaos.Faults{JournalReplay: func() { <-release }}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("starting /readyz = HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("starting /readyz missing Retry-After")
	}
	if !strings.Contains(string(body), "starting") {
		t.Errorf("starting /readyz body = %q, want to mention starting", body)
	}
	if s.Ready() {
		t.Error("Ready() = true while journal replay is blocked")
	}

	// Liveness stays green the whole time.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during start = HTTP %d, want 200", resp.StatusCode)
	}

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready after replay released")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("ready /readyz = HTTP %d %q, want 200 ready", resp.StatusCode, body)
	}
}

// TestReadyzDraining pins the other unready state: a draining server
// answers 503 with Retry-After while /healthz still reports the process
// alive.
func TestReadyzDraining(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Drain(time.Second)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /readyz missing Retry-After")
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("draining /readyz body = %q, want draining", body)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining = HTTP %d, want 200", resp.StatusCode)
	}
}

// TestMetricsExposition pins the /metrics contract the loadgen harness and
// any Prometheus scraper depend on: the versioned text content type, the
// build-info series, and the service gauges.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got, want := resp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("/metrics Content-Type = %q, want %q", got, want)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# HELP concat_build_info ",
		"# TYPE concat_build_info gauge",
		`concat_build_info{version="` + Version + `",goversion="` + runtime.Version() + `"} 1`,
		"# TYPE concat_http_in_flight gauge",
		"concat_http_in_flight 1\n", // this very scrape
		"concat_workers 1\n",
		"concat_workers_busy 0\n",
		"concat_events_subscribers 0\n",
		"concat_events_broadcast_lag_bytes 0\n",
		"concat_queue_oldest_age_seconds 0\n",
		"# HELP concat_queue_depth ",
		"# TYPE concat_queue_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestInstrumentRecordsRED drives a few requests through the handler and
// asserts the middleware recorded them: per-(route, method, code) counters
// with the registration pattern as the route label, latency histograms, and
// an X-Request-ID on every response.
func TestInstrumentRecordsRED(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("response missing X-Request-ID")
		}
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Errorf("got %d distinct request IDs over 3 requests", len(ids))
	}
	// A 404 on a parameterized route must land under the pattern label, not
	// the raw URL.
	resp, err := http.Get(ts.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing campaign = HTTP %d, want 404", resp.StatusCode)
	}

	snap := s.metrics.Snapshot()
	if got := snap.Counters[obs.Labeled("http_requests",
		"route", "/healthz", "method", "GET", "code", "200")]; got != 3 {
		t.Errorf("healthz counter = %d, want 3", got)
	}
	if got := snap.Counters[obs.Labeled("http_requests",
		"route", "/campaigns/{id}", "method", "GET", "code", "404")]; got != 1 {
		t.Errorf("campaign 404 counter = %d, want 1", got)
	}
	h, ok := snap.Durations[obs.Labeled("http_request_duration",
		"route", "/healthz", "method", "GET")]
	if !ok || h.Count != 3 {
		t.Errorf("healthz duration histogram = %+v, want 3 observations", h)
	}
}

// TestAccessLogDoesNotPerturbReports is the determinism pin for the whole
// observability layer: the same campaign submitted to an access-logged
// server and to a silent one must produce byte-identical reports, and the
// log itself must be well-formed NDJSON with one entry per request.
func TestAccessLogDoesNotPerturbReports(t *testing.T) {
	var logBuf bytes.Buffer
	logged := New(Config{AccessLog: &logBuf})
	tsLogged := httptest.NewServer(logged.Handler())
	t.Cleanup(func() {
		tsLogged.Close()
		logged.Close()
	})
	_, tsSilent := newTestServer(t, Config{})

	req := Request{Component: "Account"}
	stLogged, code := submit(t, tsLogged, req)
	if code != http.StatusAccepted {
		t.Fatalf("logged submit = HTTP %d", code)
	}
	stSilent, code := submit(t, tsSilent, req)
	if code != http.StatusAccepted {
		t.Fatalf("silent submit = HTTP %d", code)
	}
	repLogged := fetchReport(t, tsLogged, stLogged.ID)
	repSilent := fetchReport(t, tsSilent, stSilent.ID)
	if !bytes.Equal(repLogged, repSilent) {
		t.Errorf("access-logged report differs from unlogged report:\nlogged:\n%s\nsilent:\n%s",
			repLogged, repSilent)
	}

	lines := strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n")
	if len(lines) != 2 { // POST /campaigns + GET report
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var first AccessLogEntry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, lines[0])
	}
	if first.Route != "/campaigns" || first.Method != "POST" || first.Status != http.StatusAccepted {
		t.Errorf("first access entry = %+v, want POST /campaigns 202", first)
	}
	if first.ID == "" || first.Time == "" {
		t.Errorf("access entry missing id/ts: %+v", first)
	}
	var second AccessLogEntry
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second.Route != "/campaigns/{id}/report" || second.Status != http.StatusOK {
		t.Errorf("second access entry = %+v, want report route 200", second)
	}
}
