// Package pool keeps a bounded set of long-lived case-server worker
// processes warm, so a campaign amortizes process startup over many
// dispatched batches instead of paying a fork+exec per test case. The
// workers speak a length-prefixed NDJSON framing over their stdin/stdout
// pipes; the payloads themselves are the executor's batch envelopes (see
// testexec.ServeCaseBatches). The pool never interprets payloads — it only
// moves frames and classifies worker deaths, so the crash-containment
// semantics stay exactly where they were: in the executor.
package pool

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrameBytes bounds one frame's payload. Batch responses carry
// transcripts, so the bound is generous, but it must exist: a corrupted or
// hostile length header must never make the parent allocate unboundedly.
const DefaultMaxFrameBytes = 64 << 20

// Framing errors. ErrFrameTooLarge and ErrMalformedFrame mean the stream
// is desynchronized — the only safe recovery is to kill the worker.
var (
	ErrFrameTooLarge  = errors.New("pool: frame exceeds size limit")
	ErrMalformedFrame = errors.New("pool: malformed frame")
)

// maxHeaderDigits bounds the decimal length header; 19 digits already
// overflows any sane frame limit, so reading more is malformed input, not
// a longer number.
const maxHeaderDigits = 19

// WriteFrame writes one length-prefixed frame: the payload length in ASCII
// decimal, a newline, the payload bytes, a trailing newline. The trailing
// newline keeps the stream human-inspectable (NDJSON-style) and gives
// ReadFrame a cheap sync check.
func WriteFrame(w io.Writer, payload []byte) error {
	if _, err := fmt.Fprintf(w, "%d\n", len(payload)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write([]byte{'\n'})
	return err
}

// ReadFrame reads one frame written by WriteFrame. max bounds the payload
// size (<=0 applies DefaultMaxFrameBytes). It returns io.EOF only at a
// clean frame boundary; a stream that dies mid-frame yields
// io.ErrUnexpectedEOF. Malformed or oversized headers return
// ErrMalformedFrame / ErrFrameTooLarge without consuming unbounded input —
// the caller must treat the stream as dead either way.
func ReadFrame(r *bufio.Reader, max int64) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	var n int64
	digits := 0
	for {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && digits == 0 {
				return nil, io.EOF
			}
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if b == '\n' {
			if digits == 0 {
				return nil, fmt.Errorf("%w: empty length header", ErrMalformedFrame)
			}
			break
		}
		if b < '0' || b > '9' {
			return nil, fmt.Errorf("%w: non-digit %q in length header", ErrMalformedFrame, b)
		}
		if digits++; digits > maxHeaderDigits {
			return nil, fmt.Errorf("%w: length header too long", ErrMalformedFrame)
		}
		n = n*10 + int64(b-'0')
		if n > max {
			return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
		}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	b, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if b != '\n' {
		return nil, fmt.Errorf("%w: missing frame terminator", ErrMalformedFrame)
	}
	return payload, nil
}
