// The write-ahead job journal: one canonical-JSON record file per job,
// rewritten through temp+rename+fsync on every state transition, so the set
// of submitted campaigns survives any process death. Submit appends the
// queued record *before* the job becomes runnable (write-ahead), terminal
// records carry the rendered report and coverage artifact bytes, and a
// restarted server replays every non-terminal record back into its queue —
// with the verdict store turning the re-execution into warm, byte-identical
// replay. Records are canonical JSON (internal/core/canon), so the same job
// state always journals byte-identical files.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"concat/internal/core/canon"
	"concat/internal/serve/chaos"
)

// ErrJournal wraps journal write failures surfaced by Submit: the service
// refuses to accept a campaign it cannot make durable. The HTTP layer maps
// it to 500 Internal Server Error.
var ErrJournal = errors.New("serve: journal write failed")

// JobRecord is one journaled job state — the durable form of a Job. A
// record file always holds the job's *latest* state; terminal records embed
// the artifacts a restarted server must keep serving.
type JobRecord struct {
	// Seq is the numeric job sequence (the N of job ID "cN"); record files
	// sort and replay in Seq order so restarted IDs stay stable.
	Seq int `json:"seq"`
	// ID is the job ID ("c12").
	ID string `json:"id"`
	// Req is the original submission, replayed verbatim.
	Req Request `json:"req"`
	// State is the journaled job state (queued/running/done/failed/
	// quarantined).
	State string `json:"state"`
	// Attempts counts execution attempts begun, including one interrupted
	// by the crash this record may be replayed after.
	Attempts int `json:"attempts,omitempty"`
	// Error is the terminal error message for failed/quarantined records.
	Error string `json:"error,omitempty"`
	// Report is the rendered report of a done job (base64 in JSON).
	Report []byte `json:"report,omitempty"`
	// Artifact is the canonical coverage artifact of a done job.
	Artifact []byte `json:"artifact,omitempty"`
	// Impact is the canonical impact artifact of a done impact job.
	Impact []byte `json:"impact,omitempty"`
	// Summary is the terminal status snapshot (mutant totals, cache
	// counters, coverage line), restored verbatim after a restart.
	Summary *Status `json:"summary,omitempty"`
}

// Checkpoint is the graceful-shutdown marker Drain writes: whether the
// queue fully quiesced and how many jobs were still active when the
// process stopped admitting work.
type Checkpoint struct {
	Clean  bool `json:"clean"`
	Active int  `json:"active"`
}

// checkpointFile is the checkpoint's name inside the journal directory.
const checkpointFile = "checkpoint.json"

// Journal is the directory-backed write-ahead job journal. A nil *Journal
// is the disabled journal: Append and Checkpoint succeed without writing,
// Replay returns nothing — call sites thread it without checks. All
// methods are safe for concurrent use.
type Journal struct {
	dir string
	// Faults, when non-nil, lets the chaos kit fail writes.
	Faults *chaos.Faults

	mu sync.Mutex
}

// OpenJournal opens (creating if needed) a journal rooted at dir.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("serve: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating journal %s: %w", dir, err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal's root directory ("" on a nil journal).
func (jn *Journal) Dir() string {
	if jn == nil {
		return ""
	}
	return jn.dir
}

// recordPath names a record file; zero-padded Seq keeps lexical directory
// order equal to replay order.
func (jn *Journal) recordPath(seq int) string {
	return filepath.Join(jn.dir, fmt.Sprintf("job-%08d.json", seq))
}

// Append durably writes the record as the job's latest journaled state:
// canonical JSON to a temp file, fsync, rename over the previous record,
// fsync the directory. An append that fails leaves the previous record (or
// no record) intact — never a torn file.
func (jn *Journal) Append(rec JobRecord) error {
	if jn == nil {
		return nil
	}
	if rec.Seq <= 0 || rec.ID == "" || rec.State == "" {
		return fmt.Errorf("serve: journal record needs seq/id/state, got %+v", rec)
	}
	if f := jn.Faults; f != nil && f.JournalWrite != nil {
		if err := f.JournalWrite(rec.ID); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrJournal, rec.ID, err)
		}
	}
	doc, err := canon.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: encoding %s: %v", ErrJournal, rec.ID, err)
	}
	doc = append(doc, '\n')
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if err := jn.writeFile(jn.recordPath(rec.Seq), doc); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrJournal, rec.ID, err)
	}
	return nil
}

// writeFile is the durable write primitive: temp file in the journal
// directory, write, fsync, rename, directory fsync (best effort — some
// filesystems reject directory syncs).
func (jn *Journal) writeFile(path string, doc []byte) error {
	tmp, err := os.CreateTemp(jn.dir, ".journal-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(jn.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Checkpoint writes the graceful-shutdown marker. It shares Append's
// durability path but not its fault hook: a checkpoint that cannot be
// written only costs the next start its clean/dirty hint.
func (jn *Journal) Checkpoint(cp Checkpoint) error {
	if jn == nil {
		return nil
	}
	doc, err := canon.Marshal(cp)
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.writeFile(filepath.Join(jn.dir, checkpointFile), doc)
}

// LastCheckpoint reads the shutdown marker left by the previous process,
// returning ok=false when none exists or it is unreadable.
func (jn *Journal) LastCheckpoint() (Checkpoint, bool) {
	if jn == nil {
		return Checkpoint{}, false
	}
	raw, err := os.ReadFile(filepath.Join(jn.dir, checkpointFile))
	if err != nil {
		return Checkpoint{}, false
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, false
	}
	return cp, true
}

// Replay loads every journaled job record in Seq order. A record that
// cannot be read, parsed, or that fails basic validation is quarantined —
// renamed aside with a .corrupt suffix and counted — instead of aborting
// the replay: one torn record must not strand every other campaign.
func (jn *Journal) Replay() (recs []JobRecord, corrupt int, err error) {
	if jn == nil {
		return nil, 0, nil
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	entries, err := os.ReadDir(jn.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: reading journal %s: %w", jn.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(jn.dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			corrupt++
			_ = os.Rename(path, path+".corrupt")
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.Seq <= 0 || rec.ID == "" || rec.State == "" {
			corrupt++
			_ = os.Rename(path, path+".corrupt")
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Seq < recs[k].Seq })
	return recs, corrupt, nil
}
