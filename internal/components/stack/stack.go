// Package stack implements the paper's third reuse mechanism (§2.1):
// reuse by parameterization. The component is a generic (template) class,
// Stack[T]; its t-spec is a template too, instantiated per element type.
// The paper's rule for template classes — "it is necessary that the tester
// indicate a set of possible types that he/she wants to use to create an
// instance of that class" (§3.4.1) — becomes: the tester picks element
// domains, Instantiate builds one self-testable component per choice, and
// the same transaction flow model drives them all.
package stack

import (
	"errors"
	"fmt"
	"io"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/tspec"
)

// ErrEmpty is returned by Pop/Top on an empty stack.
var ErrEmpty = errors.New("stack: empty")

// MaxDepth bounds the stack; pushing beyond it is an observable error.
const MaxDepth = 64

// Stack is the generic LIFO component core. T is the element type the
// tester instantiates.
type Stack[T any] struct {
	bit.Base
	items []T
}

// Push appends an element.
func (s *Stack[T]) Push(v T) error {
	if len(s.items) >= MaxDepth {
		return fmt.Errorf("stack: push beyond depth %d", MaxDepth)
	}
	s.items = append(s.items, v)
	return nil
}

// Pop removes and returns the top element.
func (s *Stack[T]) Pop() (T, error) {
	var zero T
	if len(s.items) == 0 {
		return zero, ErrEmpty
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v, nil
}

// Top returns the top element without removing it.
func (s *Stack[T]) Top() (T, error) {
	var zero T
	if len(s.items) == 0 {
		return zero, ErrEmpty
	}
	return s.items[len(s.items)-1], nil
}

// Size returns the element count.
func (s *Stack[T]) Size() int { return len(s.items) }

// Clear empties the stack.
func (s *Stack[T]) Clear() { s.items = nil }

// CheckInvariant verifies the class invariant: 0 <= size <= MaxDepth.
func (s *Stack[T]) CheckInvariant() error {
	if err := s.AssertInvariant(len(s.items) >= 0, "InvariantTest", "size >= 0"); err != nil {
		return err
	}
	return s.AssertInvariant(len(s.items) <= MaxDepth, "InvariantTest", "size <= MaxDepth")
}

// Instantiation binds the generic component to one element type: the
// conversions between domain.Value and T, and the element domain the
// t-spec declares. This is the tester's "indicated type" of §3.4.1.
type Instantiation[T any] struct {
	// Name is the instantiated component name, e.g. "StackOfInt".
	Name string
	// Elem is the declared element domain.
	Elem tspec.DomainDecl
	// FromValue converts a generated argument into the element type.
	FromValue func(domain.Value) (T, error)
	// ToValue converts an element into an observable result value.
	ToValue func(T) domain.Value
}

// Instance adapts one instantiated stack to the component runtime.
type Instance[T any] struct {
	*Stack[T]
	inst      Instantiation[T]
	disp      component.Dispatcher
	destroyed bool
}

var _ component.Instance = (*Instance[int64])(nil)

func newInstance[T any](inst Instantiation[T]) *Instance[T] {
	i := &Instance[T]{Stack: &Stack[T]{}, inst: inst}
	i.disp.Register("Push", func(args []domain.Value) ([]domain.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("component: Push expects 1 argument, got %d", len(args))
		}
		v, err := inst.FromValue(args[0])
		if err != nil {
			return nil, fmt.Errorf("stack: Push: %w", err)
		}
		if err := i.Push(v); err != nil {
			return nil, err
		}
		return []domain.Value{domain.Int(int64(i.Size()))}, nil
	})
	i.disp.Register("Pop", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Pop", args); err != nil {
			return nil, err
		}
		v, err := i.Pop()
		if err != nil {
			return nil, err
		}
		return []domain.Value{inst.ToValue(v)}, nil
	})
	i.disp.Register("Top", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Top", args); err != nil {
			return nil, err
		}
		v, err := i.Top()
		if err != nil {
			return nil, err
		}
		return []domain.Value{inst.ToValue(v)}, nil
	})
	i.disp.Register("Size", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Size", args); err != nil {
			return nil, err
		}
		return []domain.Value{domain.Int(int64(i.Size()))}, nil
	})
	i.disp.Register("Clear", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Clear", args); err != nil {
			return nil, err
		}
		i.Clear()
		return nil, nil
	})
	return i
}

// Invoke implements component.Instance.
func (i *Instance[T]) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if i.destroyed {
		return nil, fmt.Errorf("%w: %s", component.ErrDestroyed, i.inst.Name)
	}
	return i.disp.Invoke(method, args)
}

// Destroy implements component.Instance.
func (i *Instance[T]) Destroy() error {
	i.Clear()
	i.destroyed = true
	return nil
}

// InvariantTest implements bit.SelfTestable.
func (i *Instance[T]) InvariantTest() error {
	if err := i.Guard(); err != nil {
		return err
	}
	return i.CheckInvariant()
}

// Reporter implements bit.SelfTestable.
func (i *Instance[T]) Reporter(w io.Writer) error {
	if err := i.Guard(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s{size: %d}\n", i.inst.Name, i.Size())
	return err
}

// Factory builds instances of one instantiation.
type Factory[T any] struct {
	inst Instantiation[T]
	spec *tspec.Spec
}

var _ component.Factory = (*Factory[int64])(nil)

// Instantiate builds the self-testable component for one element type:
// factory plus instantiated t-spec.
func Instantiate[T any](inst Instantiation[T]) (*Factory[T], error) {
	if inst.Name == "" || inst.FromValue == nil || inst.ToValue == nil {
		return nil, errors.New("stack: instantiation needs name and conversions")
	}
	spec, err := SpecFor(inst.Name, inst.Elem)
	if err != nil {
		return nil, err
	}
	return &Factory[T]{inst: inst, spec: spec}, nil
}

// Name implements component.Factory.
func (f *Factory[T]) Name() string { return f.inst.Name }

// Spec implements component.Factory.
func (f *Factory[T]) Spec() *tspec.Spec { return f.spec }

// New implements component.Factory. The single constructor carries the
// instantiated component name.
func (f *Factory[T]) New(ctor string, args []domain.Value) (component.Instance, error) {
	if ctor != f.inst.Name {
		return nil, fmt.Errorf("stack: unknown constructor %q", ctor)
	}
	if err := component.WantArgs(ctor, args); err != nil {
		return nil, err
	}
	return newInstance(f.inst), nil
}

// SpecFor instantiates the t-spec template for one element domain: the
// model is shared by every instantiation, only the Push parameter's domain
// (and the class name) change.
func SpecFor(name string, elem tspec.DomainDecl) (*tspec.Spec, error) {
	return tspec.NewBuilder(name).
		Attribute("size", tspec.RangeInt(0, MaxDepth)).
		Method("m1", name, "", tspec.CatConstructor).
		Method("m2", "~"+name, "", tspec.CatDestructor).
		Method("m3", "Push", "int", tspec.CatUpdate).
		Param("v", elem).
		Uses("size").
		Method("m4", "Pop", "elem", tspec.CatUpdate).
		Uses("size").
		Method("m5", "Top", "elem", tspec.CatAccess).
		Method("m6", "Size", "int", tspec.CatAccess).
		Uses("size").
		Method("m7", "Clear", "", tspec.CatUpdate).
		Uses("size").
		Node("n1", true, "m1").
		Node("n2", false, "m3").
		Node("n3", false, "m4").
		Node("n4", false, "m5", "m6").
		Node("n5", false, "m7").
		Node("n6", false, "m2").
		Edge("n1", "n2").
		Edge("n1", "n6").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n2", "n5").
		Edge("n2", "n6").
		Edge("n3", "n4").
		Edge("n3", "n6").
		Edge("n4", "n6").
		Edge("n5", "n6").
		Build()
}

// IntStack is the int64 instantiation the examples and tests use.
func IntStack() (*Factory[int64], error) {
	return Instantiate(Instantiation[int64]{
		Name: "StackOfInt",
		Elem: tspec.RangeInt(0, 999),
		FromValue: func(v domain.Value) (int64, error) {
			return v.AsInt()
		},
		ToValue: domain.Int,
	})
}

// StringStack is the string instantiation.
func StringStack() (*Factory[string], error) {
	return Instantiate(Instantiation[string]{
		Name: "StackOfString",
		Elem: tspec.StringsOf("alpha", "beta", "gamma"),
		FromValue: func(v domain.Value) (string, error) {
			return v.AsString()
		},
		ToValue: domain.Str,
	})
}
